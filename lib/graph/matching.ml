module IntSet = Set.Make (Int)

type matching = (Graph.node * Graph.node) list

let is_matching g matching =
  let rec disjoint seen = function
    | [] -> true
    | (u, v) :: rest ->
        u < v
        && Graph.mem_edge g u v
        && (not (IntSet.mem u seen))
        && (not (IntSet.mem v seen))
        && disjoint (IntSet.add u (IntSet.add v seen)) rest
  in
  disjoint IntSet.empty matching

let matched_nodes matching =
  List.concat_map (fun (u, v) -> [ u; v ]) matching |> List.sort_uniq Int.compare

let is_maximal g matching =
  is_matching g matching
  &&
  let matched = IntSet.of_list (matched_nodes matching) in
  Graph.fold_edges
    (fun u v acc -> acc && (IntSet.mem u matched || IntSet.mem v matched))
    g true

let greedy_maximal g =
  let matched = ref IntSet.empty in
  Graph.fold_edges
    (fun u v acc ->
      if IntSet.mem u !matched || IntSet.mem v !matched then acc
      else begin
        matched := IntSet.add u (IntSet.add v !matched);
        (u, v) :: acc
      end)
    g []
  |> List.rev

let is_vertex_cover g cover =
  let c = IntSet.of_list cover in
  List.for_all (Graph.mem_node g) cover
  && Graph.fold_edges (fun u v acc -> acc && (IntSet.mem u c || IntSet.mem v c)) g true

(* Maximum bipartite matching: Kuhn's augmenting-path algorithm from
   the left side of the 2-colouring. *)
let maximum_bipartite g =
  match Bipartite.sides g with
  | None -> invalid_arg "Matching.maximum_bipartite: graph is not bipartite"
  | Some (left, _right) ->
      let mate = Hashtbl.create 64 in
      let try_augment u =
        let visited = Hashtbl.create 16 in
        let rec dfs u =
          List.exists
            (fun v ->
              if Hashtbl.mem visited v then false
              else begin
                Hashtbl.replace visited v ();
                match Hashtbl.find_opt mate v with
                | None ->
                    Hashtbl.replace mate v u;
                    Hashtbl.replace mate u v;
                    true
                | Some u' ->
                    if dfs u' then begin
                      Hashtbl.replace mate v u;
                      Hashtbl.replace mate u v;
                      true
                    end
                    else false
              end)
            (Graph.neighbours g u)
        in
        dfs u
      in
      List.iter (fun u -> ignore (try_augment u)) left;
      let left_set = IntSet.of_list left in
      Hashtbl.fold
        (fun u v acc ->
          if IntSet.mem u left_set then (min u v, max u v) :: acc else acc)
        mate []
      |> List.sort_uniq compare

let koenig_cover g matching =
  match Bipartite.sides g with
  | None -> invalid_arg "Matching.koenig_cover: graph is not bipartite"
  | Some (left, _right) ->
      let left_set = IntSet.of_list left in
      let mate = Hashtbl.create 64 in
      List.iter
        (fun (u, v) ->
          Hashtbl.replace mate u v;
          Hashtbl.replace mate v u)
        matching;
      (* Alternating BFS from unmatched left nodes: Z = reachable nodes
         along non-matching edges (left -> right) and matching edges
         (right -> left). Cover = (L \ Z) ∪ (R ∩ Z). *)
      let z = Hashtbl.create 64 in
      let q = Queue.create () in
      List.iter
        (fun u ->
          if not (Hashtbl.mem mate u) then begin
            Hashtbl.replace z u ();
            Queue.push u q
          end)
        left;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        if IntSet.mem u left_set then
          List.iter
            (fun v ->
              if Hashtbl.find_opt mate u <> Some v && not (Hashtbl.mem z v) then begin
                Hashtbl.replace z v ();
                Queue.push v q
              end)
            (Graph.neighbours g u)
        else
          match Hashtbl.find_opt mate u with
          | Some w when not (Hashtbl.mem z w) ->
              Hashtbl.replace z w ();
              Queue.push w q
          | _ -> ()
      done;
      Graph.fold_nodes
        (fun v acc ->
          let in_z = Hashtbl.mem z v in
          let in_left = IntSet.mem v left_set in
          if (in_left && not in_z) || ((not in_left) && in_z) then v :: acc
          else acc)
        g []
      |> List.rev

let cycle_order g =
  (* Returns the nodes of a cycle graph in traversal order. *)
  let ok =
    Graph.n g >= 3
    && Graph.m g = Graph.n g
    && Graph.fold_nodes (fun v acc -> acc && Graph.degree g v = 2) g true
    && Traversal.is_connected g
  in
  if not ok then invalid_arg "Matching: graph is not a cycle";
  let start = List.hd (Graph.nodes g) in
  let rec walk acc prev v =
    let next =
      List.find (fun u -> u <> prev) (Graph.neighbours g v)
    in
    if next = start then List.rev (v :: acc)
    else walk (v :: acc) v next
  in
  match Graph.neighbours g start with
  | first :: _ -> start :: walk [] start first
  | [] -> assert false

let maximum_on_cycle g =
  let order = Array.of_list (cycle_order g) in
  let n = Array.length order in
  let rec take acc i =
    if i + 1 >= n then List.rev acc
    else take ((min order.(i) order.(i + 1), max order.(i) order.(i + 1)) :: acc) (i + 2)
  in
  take [] 0

let is_maximum_on_cycle g matching =
  let n = Graph.n g in
  ignore (cycle_order g);
  is_matching g matching && List.length matching = n / 2
