let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_attrs attrs =
  match attrs with
  | [] -> ""
  | _ ->
      " ["
      ^ String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) attrs)
      ^ "]"

let of_graph ?(name = "G") ?(node_attrs = fun _ -> []) ?(edge_attrs = fun _ _ -> [])
    g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  node [shape=circle];\n";
  Graph.iter_nodes
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  %d%s;\n" v (render_attrs (node_attrs v))))
    g;
  Graph.iter_edges
    (fun u v ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d%s;\n" u v (render_attrs (edge_attrs u v))))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_digraph ?(name = "G") d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  node [shape=circle];\n";
  List.iter (fun v -> Buffer.add_string buf (Printf.sprintf "  %d;\n" v)) (Digraph.nodes d);
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" u v))
    (Digraph.arcs d);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
