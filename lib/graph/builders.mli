(** Deterministic graph constructions used throughout the schemes,
    tests and benchmarks. Unless stated otherwise, node identifiers are
    [0 .. n-1]. *)

val cycle : int -> Graph.t
(** [cycle n] is the n-cycle, [n >= 3]. *)

val cycle_of_ids : int list -> Graph.t
(** A cycle visiting the given distinct identifiers in order; the list
    must have length at least 3. Used by the gluing construction, which
    needs cycles over prescribed non-contiguous identifiers. *)

val path : int -> Graph.t
(** [path n] is the path with [n >= 1] nodes. *)

val path_of_ids : int list -> Graph.t
val complete : int -> Graph.t
val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b] is K_{a,b}: side A is [0..a-1], side B is
    [a..a+b-1]. *)

val star : int -> Graph.t
(** [star k] has centre 0 and leaves [1..k]. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]; node at (r, c) has id [r * cols + c]. Planar. *)

val hypercube : int -> Graph.t
(** [hypercube d] is the d-dimensional cube on [2^d] nodes. *)

val petersen : Graph.t
(** The Petersen graph: 3-regular, non-planar, chromatic number 3. *)

val binary_tree : int -> Graph.t
(** [binary_tree depth] is the complete binary tree (heap numbering,
    root 0). *)

val caterpillar : int -> int -> Graph.t
(** [caterpillar spine legs] is a spine path with [legs] pendant leaves
    on each spine node; a tree. *)

val wheel : int -> Graph.t
(** [wheel k] is a k-cycle plus a hub adjacent to all; chromatic number
    4 when [k] is odd. *)

val disjoint_cycles : int list -> Graph.t
(** One cycle per listed length, node ids consecutive blocks. *)
