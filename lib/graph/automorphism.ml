let is_automorphism g mapping =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (u, v) -> Hashtbl.replace tbl u v) mapping;
  let nodes = Graph.nodes g in
  List.length mapping = List.length nodes
  && List.for_all (fun v -> Hashtbl.mem tbl v) nodes
  && List.sort_uniq Int.compare (List.map snd mapping) = nodes
  && Graph.fold_edges
       (fun u v acc ->
         acc && Graph.mem_edge g (Hashtbl.find tbl u) (Hashtbl.find tbl v))
       g true
(* A bijection preserving edges on a finite simple graph also preserves
   non-edges (edge counts match), so the edge check suffices. *)

(* Backtracking over candidate images, pruned by degree and
   consistency with earlier assignments. [stop] decides whether a
   complete assignment ends the search. *)
let search g ~stop =
  let nodes = Array.of_list (Graph.nodes g) in
  let n = Array.length nodes in
  let assignment = Hashtbl.create 16 in
  let used = Hashtbl.create 16 in
  let results = ref [] in
  let compatible v w =
    Graph.degree g v = Graph.degree g w
    && Array.for_all
         (fun u ->
           match Hashtbl.find_opt assignment u with
           | None -> true
           | Some x -> Bool.equal (Graph.mem_edge g v u) (Graph.mem_edge g w x))
         nodes
  in
  let exception Stop in
  let rec go i =
    if i = n then begin
      let mapping =
        Array.to_list (Array.map (fun v -> (v, Hashtbl.find assignment v)) nodes)
      in
      results := mapping :: !results;
      if stop mapping then raise Stop
    end
    else
      let v = nodes.(i) in
      Array.iter
        (fun w ->
          if (not (Hashtbl.mem used w)) && compatible v w then begin
            Hashtbl.replace assignment v w;
            Hashtbl.replace used w ();
            go (i + 1);
            Hashtbl.remove assignment v;
            Hashtbl.remove used w
          end)
        nodes
  in
  (try go 0 with Stop -> ());
  List.rev !results

let automorphisms g =
  let mappings = search g ~stop:(fun _ -> false) in
  List.map
    (fun mapping ->
      let tbl = Hashtbl.create 16 in
      List.iter (fun (u, v) -> Hashtbl.replace tbl u v) mapping;
      fun v ->
        match Hashtbl.find_opt tbl v with
        | Some w -> w
        | None -> invalid_arg "Automorphism: unknown node")
    mappings

let count_automorphisms g = List.length (search g ~stop:(fun _ -> false))

let is_identity mapping = List.for_all (fun (u, v) -> u = v) mapping

let nontrivial_automorphism g =
  let found = ref None in
  let stop mapping =
    if is_identity mapping then false
    else begin
      found := Some mapping;
      true
    end
  in
  ignore (search g ~stop);
  !found

let is_symmetric g = nontrivial_automorphism g <> None
let is_asymmetric g = not (is_symmetric g)

let fixpoint_free_automorphism g =
  let found = ref None in
  let stop mapping =
    if List.exists (fun (u, v) -> u = v) mapping then false
    else begin
      found := Some mapping;
      true
    end
  in
  ignore (search g ~stop);
  !found

let has_fixpoint_free_symmetry g = fixpoint_free_automorphism g <> None
