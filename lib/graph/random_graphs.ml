let shuffle st xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let gnp st n p =
  if n < 0 then invalid_arg "Random_graphs.gnp";
  let g = ref (List.fold_left Graph.add_node Graph.empty (List.init n Fun.id)) in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float st 1.0 < p then g := Graph.add_edge !g u v
    done
  done;
  !g

let connected_gnp st n p =
  if n < 1 then invalid_arg "Random_graphs.connected_gnp";
  let g = ref (gnp st n p) in
  let rec patch () =
    match Traversal.components !g with
    | [] | [ _ ] -> ()
    | c1 :: c2 :: _ ->
        let pick c = List.nth c (Random.State.int st (List.length c)) in
        g := Graph.add_edge !g (pick c1) (pick c2);
        patch ()
  in
  patch ();
  !g

let tree st n =
  if n < 1 then invalid_arg "Random_graphs.tree";
  if n = 1 then Graph.add_node Graph.empty 0
  else if n = 2 then Graph.of_edges [ (0, 1) ]
  else begin
    (* Prüfer decoding. *)
    let code = Array.init (n - 2) (fun _ -> Random.State.int st n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) code;
    let module IS = Set.Make (Int) in
    let leaves = ref IS.empty in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then leaves := IS.add v !leaves
    done;
    let g = ref (List.fold_left Graph.add_node Graph.empty (List.init n Fun.id)) in
    Array.iter
      (fun v ->
        let leaf = IS.min_elt !leaves in
        leaves := IS.remove leaf !leaves;
        g := Graph.add_edge !g leaf v;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then leaves := IS.add v !leaves)
      code;
    let a = IS.min_elt !leaves in
    let b = IS.max_elt !leaves in
    Graph.add_edge !g a b
  end

let bipartite st a b p =
  let g =
    ref (List.fold_left Graph.add_node Graph.empty (List.init (a + b) Fun.id))
  in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      if Random.State.float st 1.0 < p then g := Graph.add_edge !g u v
    done
  done;
  !g

let regular_even st n k =
  if n < 3 || k < 1 then invalid_arg "Random_graphs.regular_even";
  let g = ref (List.fold_left Graph.add_node Graph.empty (List.init n Fun.id)) in
  for _ = 1 to k do
    let order = shuffle st (List.init n Fun.id) in
    let arr = Array.of_list order in
    for i = 0 to n - 1 do
      let u = arr.(i) and v = arr.((i + 1) mod n) in
      if u <> v then g := Graph.add_edge !g u v
    done
  done;
  !g

let permuted_ids st ~factor g =
  let nodes = Graph.nodes g in
  let n = List.length nodes in
  if factor < 1 then invalid_arg "Random_graphs.permuted_ids";
  let pool = shuffle st (List.init (factor * max 1 n) Fun.id) in
  let mapping = Hashtbl.create 64 in
  List.iteri
    (fun i v -> Hashtbl.replace mapping v (List.nth pool i))
    nodes;
  Graph.relabel g (Hashtbl.find mapping)
