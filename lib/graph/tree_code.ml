let check_tree g =
  if not (Tree_enum.is_tree g) then invalid_arg "Tree_code: not a tree"

(* Children ordered by (canonical code desc, id asc) — deterministic
   and isomorphism-respecting. *)
let ordered_children g parent v =
  let children = List.filter (fun u -> u <> parent) (Graph.neighbours g v) in
  let rec code parent v =
    let cs = List.filter (fun u -> u <> parent) (Graph.neighbours g v) in
    let sub = List.map (code v) cs |> List.sort (fun a b -> String.compare b a) in
    "(" ^ String.concat "" sub ^ ")"
  in
  children
  |> List.map (fun c -> (code v c, c))
  |> List.sort (fun (c1, v1) (c2, v2) ->
         match String.compare c2 c1 with 0 -> Int.compare v1 v2 | d -> d)
  |> List.map snd

let traversal g ~root =
  check_tree g;
  let rec visit parent v acc = (* pre-order *)
    List.fold_left (fun acc c -> visit v c acc) (v :: acc) (ordered_children g parent v)
  in
  List.rev (visit (-1) root [])

let position_of g ~root v =
  let order = traversal g ~root in
  let rec index i = function
    | [] -> invalid_arg "Tree_code.position_of: unknown node"
    | x :: rest -> if x = v then i else index (i + 1) rest
  in
  index 0 order

let encode_structure g ~root =
  check_tree g;
  let buf = Bits.Writer.create () in
  let rec visit parent v =
    List.iter
      (fun c ->
        Bits.Writer.bool buf true;
        visit v c;
        Bits.Writer.bool buf false)
      (ordered_children g parent v)
  in
  visit (-1) root;
  Bits.Writer.contents buf

let decode_structure bits =
  let c = Bits.Reader.of_bits bits in
  let g = ref (Graph.add_node Graph.empty 0) in
  let next = ref 1 in
  let rec children parent =
    if Bits.Reader.at_end c then ()
    else if Bits.Reader.bool c then begin
      let id = !next in
      incr next;
      g := Graph.add_edge !g parent id;
      children id;
      children parent
    end
    else () (* '0': close this level; consumed. *)
  in
  children 0;
  { Tree_enum.root = 0; tree = !g }
