(** Simple undirected graphs with arbitrary non-negative integer node
    identifiers.

    The paper assumes [V(G) ⊆ {1, …, poly(n)}]: identifiers are unique
    but not necessarily contiguous, and a local verifier may read them.
    This module therefore never assumes nodes are numbered [0..n-1];
    the lower-bound constructions of Section 5.3 depend on gluing
    graphs with carefully chosen, non-contiguous identifier patterns. *)

type node = int

type t
(** A simple undirected graph: no self-loops, no parallel edges. *)

val create : nodes:node list -> edges:(node * node) list -> t
(** [create ~nodes ~edges] builds a graph. Duplicate nodes are merged.
    Raises [Invalid_argument] on negative identifiers, self-loops, or
    edges mentioning unknown endpoints. Parallel edges are merged. *)

val of_edges : (node * node) list -> t
(** [of_edges es] is [create] with the node set implied by [es]. *)

val empty : t
val is_empty : t -> bool

val nodes : t -> node list
(** Sorted in increasing identifier order. *)

val n : t -> int
(** Number of nodes, written [n(G)] in the paper. *)

val edges : t -> (node * node) list
(** Each edge appears once as [(u, v)] with [u < v], sorted. *)

val m : t -> int
(** Number of edges. *)

val mem_node : t -> node -> bool
val mem_edge : t -> node -> node -> bool

val neighbours : t -> node -> node list
(** Sorted; raises [Invalid_argument] for an unknown node. *)

val degree : t -> node -> int
val max_degree : t -> int
val max_id : t -> node
(** Largest identifier; 0 on the empty graph. *)

val add_node : t -> node -> t
val add_edge : t -> node -> node -> t
(** Adds missing endpoints as needed; idempotent on existing edges. *)

val remove_edge : t -> node -> node -> t
val remove_node : t -> node -> t
(** Removes the node and all incident edges. *)

val induced : t -> node list -> t
(** [induced g vs] is the subgraph induced by the listed nodes
    (unknown nodes are ignored). *)

val relabel : t -> (node -> node) -> t
(** [relabel g f] renames every node by [f], which must be injective on
    [nodes g] and produce non-negative identifiers; raises
    [Invalid_argument] otherwise. *)

val union_disjoint : t -> t -> t
(** Raises [Invalid_argument] if the node sets intersect. *)

val equal : t -> t -> bool
(** Equality of labelled graphs: same node set, same edge set. *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a
val fold_edges : (node -> node -> 'a -> 'a) -> t -> 'a -> 'a
val iter_nodes : (node -> unit) -> t -> unit
val iter_edges : (node -> node -> unit) -> t -> unit

val iter_neighbours : (node -> unit) -> t -> node -> unit
(** Like [List.iter f (neighbours g v)] — increasing identifier
    order — but without materialising the list; the traversal and
    simulation inner loops use this. Raises [Invalid_argument] for an
    unknown node. *)

val fold_neighbours : (node -> 'a -> 'a) -> t -> node -> 'a -> 'a
(** Allocation-free fold over the neighbours of a node, in increasing
    identifier order. *)

val is_subgraph : t -> of_:t -> bool
(** [is_subgraph h ~of_:g] checks node and edge containment. *)

val complement : t -> t
(** Complement on the same node set. *)

val line_graph : t -> t * (node * (node * node)) list
(** [line_graph g] is the line graph [L(g)] together with the mapping
    from each fresh node of [L(g)] to the edge of [g] it represents. *)
