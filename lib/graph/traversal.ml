module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

let bfs_map g s =
  if not (Graph.mem_node g s) then invalid_arg "Traversal: unknown source";
  let dist = Hashtbl.create 64 in
  Hashtbl.replace dist s 0;
  let q = Queue.create () in
  Queue.push s q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let d = Hashtbl.find dist v in
    Graph.iter_neighbours
      (fun u ->
        if not (Hashtbl.mem dist u) then begin
          Hashtbl.replace dist u (d + 1);
          Queue.push u q
        end)
      g v
  done;
  dist

let bfs_distances g s =
  let dist = bfs_map g s in
  Hashtbl.fold (fun v d acc -> (v, d) :: acc) dist []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let distance g s t =
  let dist = bfs_map g s in
  Hashtbl.find_opt dist t

let shortest_path g s t =
  if not (Graph.mem_node g s && Graph.mem_node g t) then
    invalid_arg "Traversal.shortest_path: unknown endpoint";
  let parent = Hashtbl.create 64 in
  Hashtbl.replace parent s s;
  let q = Queue.create () in
  Queue.push s q;
  let found = ref (s = t) in
  while (not !found) && not (Queue.is_empty q) do
    let v = Queue.pop q in
    Graph.iter_neighbours
      (fun u ->
        if not (Hashtbl.mem parent u) then begin
          Hashtbl.replace parent u v;
          if u = t then found := true;
          Queue.push u q
        end)
      g v
  done;
  if not (Hashtbl.mem parent t) then None
  else
    let rec walk acc v =
      if v = s then s :: acc else walk (v :: acc) (Hashtbl.find parent v)
    in
    Some (walk [] t)

let ball g v r =
  let dist = bfs_map g v in
  Hashtbl.fold (fun u d acc -> if d <= r then u :: acc else acc) dist []
  |> List.sort Int.compare

let component g v = ball g v max_int

let components g =
  let seen = Hashtbl.create 64 in
  Graph.fold_nodes
    (fun v acc ->
      if Hashtbl.mem seen v then acc
      else begin
        let comp = component g v in
        List.iter (fun u -> Hashtbl.replace seen u ()) comp;
        comp :: acc
      end)
    g []
  |> List.rev

let is_connected g = List.length (components g) <= 1

let spanning_tree g root =
  let dist = bfs_map g root in
  (* Parent: any neighbour at distance d-1; pick smallest for determinism. *)
  Hashtbl.fold
    (fun v d acc ->
      if v = root then acc
      else
        let parent =
          List.find
            (fun u -> match Hashtbl.find_opt dist u with
              | Some du -> du = d - 1
              | None -> false)
            (Graph.neighbours g v)
        in
        (v, parent) :: acc)
    dist []
  |> List.sort compare

let dfs_intervals g root =
  if not (Graph.mem_node g root) then invalid_arg "Traversal.dfs_intervals";
  let time = ref 0 in
  let res = ref [] in
  let seen = Hashtbl.create 64 in
  let rec visit v =
    Hashtbl.replace seen v ();
    let disc = !time in
    incr time;
    Graph.iter_neighbours (fun u -> if not (Hashtbl.mem seen u) then visit u) g v;
    res := (v, (disc, !time)) :: !res;
    incr time
  in
  visit root;
  List.sort compare !res

let eccentricity g v =
  let dist = bfs_map g v in
  Hashtbl.fold (fun _ d acc -> max acc d) dist 0

let diameter g =
  if Graph.is_empty g then invalid_arg "Traversal.diameter: empty graph";
  if not (is_connected g) then invalid_arg "Traversal.diameter: disconnected";
  Graph.fold_nodes (fun v acc -> max acc (eccentricity g v)) g 0
