module IntSet = Set.Make (Int)

let is_hamiltonian_cycle g seq =
  match seq with
  | [] | [ _ ] | [ _; _ ] -> false
  | first :: _ ->
      let rec edges_ok = function
        | [ last ] -> Graph.mem_edge g last first
        | a :: (b :: _ as rest) -> Graph.mem_edge g a b && edges_ok rest
        | [] -> false
      in
      List.length seq = Graph.n g
      && List.sort_uniq Int.compare seq = Graph.nodes g
      && edges_ok seq

let search g ~cycle =
  let n = Graph.n g in
  if n = 0 then None
  else if n = 1 then if cycle then None else Some (Graph.nodes g)
  else if cycle && n = 2 then None
  else begin
    let start = List.hd (Graph.nodes g) in
    (* For a cycle we may anchor at any node; for a path we must try
       all start nodes. *)
    let starts = if cycle then [ start ] else Graph.nodes g in
    let exception Found of Graph.node list in
    let rec extend acc seen v depth =
      if depth = n then begin
        if (not cycle) || Graph.mem_edge g v (List.nth (List.rev acc) 0) then
          raise (Found (List.rev acc))
      end
      else
        List.iter
          (fun u ->
            if not (IntSet.mem u seen) then
              extend (u :: acc) (IntSet.add u seen) u (depth + 1))
          (Graph.neighbours g v)
    in
    try
      List.iter
        (fun s -> extend [ s ] (IntSet.singleton s) s 1)
        starts;
      None
    with Found seq -> Some seq
  end

let hamiltonian_cycle g = search g ~cycle:true
let hamiltonian_path g = search g ~cycle:false
