(** O(n)-bit encoding of a rooted tree structure (balanced
    parentheses), plus the node identifiers. Section 6.2: "the
    structure of a tree can be encoded in Θ(n) bits, and the index
    requires Θ(log n) bits" — the universal tree scheme stores the
    structure once per node plus each node's own position.

    Note the identifier list itself costs Θ(n log n) bits; the Θ(n)
    claim concerns the pure structure, which is what the fixpoint-free
    symmetry property needs. Both encodings are provided. *)

val encode_structure : Graph.t -> root:Graph.node -> Bits.t
(** Balanced-parentheses code ('1' = down, '0' = up), 2(n-1) bits;
    children are visited in canonical (non-increasing code) order so
    isomorphic rooted trees encode identically. Raises
    [Invalid_argument] when the graph is not a tree. *)

val decode_structure : Bits.t -> Tree_enum.rooted
(** Rebuilds the canonical representative on nodes [0..n-1], root 0. *)

val position_of : Graph.t -> root:Graph.node -> Graph.node -> int
(** The index of a node in the canonical depth-first traversal used by
    {!encode_structure}; node positions are [0 .. n-1] with the root at
    0. When siblings are exchangeable (equal canonical codes) the
    position is still well-defined because exchangeable nodes play
    isomorphic roles; ties are broken by identifier. *)

val traversal : Graph.t -> root:Graph.node -> Graph.node list
(** The canonical depth-first order itself ([position_of] inverts it). *)
