(* Enumerate permutations of the node set that respect degree classes
   (images must have the same degree sequence position), and pick the
   lexicographically smallest adjacency relation. *)

let best_relabelling g =
  let nodes = Array.of_list (Graph.nodes g) in
  let n = Array.length nodes in
  (* Adjacency matrix bits in row-major upper-triangular order for a
     candidate permutation perm : position -> original node. *)
  let matrix_key perm =
    let buf = Buffer.create (n * n / 2) in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Buffer.add_char buf
          (if Graph.mem_edge g perm.(i) perm.(j) then '1' else '0')
      done
    done;
    Buffer.contents buf
  in
  let best = ref None in
  let degree_of = Hashtbl.create 16 in
  Array.iter (fun v -> Hashtbl.replace degree_of v (Graph.degree g v)) nodes;
  (* Candidates at each position: sort by degree descending to fix
     degree classes; only permute within classes... positions with
     higher degree come first, so a permutation must map position i to
     a node with the i-th degree in the sorted degree sequence. *)
  let sorted_degrees =
    Array.to_list nodes
    |> List.map (Hashtbl.find degree_of)
    |> List.sort (fun a b -> compare b a)
    |> Array.of_list
  in
  let perm = Array.make n (-1) in
  let used = Hashtbl.create 16 in
  let rec go i =
    if i = n then begin
      let key = matrix_key perm in
      match !best with
      | Some (k, _) when k <= key -> ()
      | _ -> best := Some (key, Array.copy perm)
    end
    else
      Array.iter
        (fun v ->
          if (not (Hashtbl.mem used v)) && Hashtbl.find degree_of v = sorted_degrees.(i)
          then begin
            perm.(i) <- v;
            Hashtbl.replace used v ();
            go (i + 1);
            Hashtbl.remove used v
          end)
        nodes
  in
  go 0;
  match !best with
  | Some (key, p) -> (key, p)
  | None -> ("", [||])

let canonical_key g =
  let key, _ = best_relabelling g in
  Printf.sprintf "%d:%s" (Graph.n g) key

let canonical_form g =
  let _, perm = best_relabelling g in
  if Array.length perm = 0 then Graph.empty
  else begin
    (* perm.(i) is the original node placed at position i; the
       canonical node ids are 1..n as in the paper. *)
    let target = Hashtbl.create 16 in
    Array.iteri (fun i v -> Hashtbl.replace target v (i + 1)) perm;
    Graph.relabel g (Hashtbl.find target)
  end

let shifted g i = Graph.relabel g (fun v -> v + i)
