(** Maximum flow and Menger-style vertex connectivity.

    The s–t connectivity scheme of Section 4.2 needs, for a graph with
    vertex connectivity exactly [k]: (i) a partition [S ∪ C ∪ T] with
    [s ∈ S], [t ∈ T], [|C| = k] and no S–T edge, and (ii) [k]
    internally-vertex-disjoint s–t paths each crossing [C] once. Both
    come out of a unit-capacity max-flow on the node-split graph. *)

type flow_network
(** A directed network with integer arc capacities. *)

val network : nodes:int list -> arcs:(int * int * int) list -> flow_network
(** [(u, v, cap)] arcs; parallel arcs add up their capacities. *)

val max_flow : flow_network -> source:int -> sink:int -> int * ((int * int) * int) list
(** Edmonds–Karp. Returns the flow value and the positive flow on each
    arc. *)

val min_cut_side : flow_network -> source:int -> sink:int -> int list
(** Nodes reachable from the source in the residual graph of a maximum
    flow (the source side of a minimum cut), sorted. *)

val vertex_disjoint_paths :
  Graph.t -> s:Graph.node -> t:Graph.node -> Graph.node list list
(** A maximum set of internally-vertex-disjoint s–t paths (each path is
    a node list from [s] to [t]). Requires [s ≠ t] and that the edge
    [s–t] is absent; raises [Invalid_argument] otherwise. *)

val vertex_connectivity : Graph.t -> s:Graph.node -> t:Graph.node -> int
(** The s–t vertex connectivity (size of a minimum s–t vertex
    separator = number of disjoint paths, by Menger). Same
    preconditions as {!vertex_disjoint_paths}. *)

val vertex_separator : Graph.t -> s:Graph.node -> t:Graph.node -> Graph.node list
(** A minimum s–t vertex separator, sorted. Empty when [s] and [t] are
    already disconnected. *)

val menger_certificate :
  Graph.t ->
  s:Graph.node ->
  t:Graph.node ->
  (Graph.node list list * Graph.node list) option
(** [menger_certificate g ~s ~t] packages the scheme's witness: [k]
    disjoint paths and a separator [C] of the same size [k], with each
    path meeting [C] exactly once. [None] when [t] is unreachable from
    [s]. *)
