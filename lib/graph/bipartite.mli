(** Bipartiteness: 2-colourings and odd cycles. A graph is bipartite
    iff it has a proper 2-colouring iff it has no odd cycle; the
    non-bipartiteness scheme of Section 5.1 needs an explicit odd
    cycle as its witness. *)

val two_colouring : Graph.t -> (Graph.node -> bool) option
(** [two_colouring g] is a proper 2-colouring when [g] is bipartite
    (colour of each node as a boolean), [None] otherwise. *)

val is_bipartite : Graph.t -> bool

val odd_cycle : Graph.t -> Graph.node list option
(** An odd cycle as a node list (first node not repeated at the end),
    or [None] when the graph is bipartite. The cycle is simple. *)

val sides : Graph.t -> (Graph.node list * Graph.node list) option
(** The two colour classes (each sorted), when bipartite. *)
