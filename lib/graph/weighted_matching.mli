(** Maximum-weight matchings in bipartite graphs, with the LP-duality
    certificates of Section 2.3.

    The primal LP maximises [Σ w_e x_e] subject to [A x ≤ 1]; the dual
    minimises [Σ y_v] subject to [Aᵀ y ≥ w], [y ≥ 0]. Total
    unimodularity gives integral optima on both sides, and with weights
    in [0..W] there is an optimal dual with [y_v ∈ {0..W}] — the
    O(log W) locally checkable proof. *)

type weights = Graph.node * Graph.node -> int
(** Edge weights, queried with [u < v]; must be non-negative. *)

val weight_of_matching : weights -> Matching.matching -> int

val maximum_weight : Graph.t -> weights -> Matching.matching
(** A maximum-weight matching of a bipartite graph, by successive
    best-gain augmenting paths (min-cost-flow style, Bellman–Ford).
    Raises [Invalid_argument] if the graph is not bipartite or a weight
    is negative. *)

type dual = (Graph.node * int) list
(** Dual value [y_v] for every node, sorted by node. *)

val dual_certificate : Graph.t -> weights -> Matching.matching -> dual option
(** [dual_certificate g w m] computes integral duals witnessing that
    [m] is maximum-weight: feasibility [y_u + y_v ≥ w(u,v)] on every
    edge, complementary slackness ([y] tight on matched edges, [y_v =
    0] on unmatched nodes), and [0 ≤ y_v ≤ W]. Returns [None] when no
    such certificate exists — i.e. when [m] is {e not} maximum-weight. *)

val check_certificate :
  Graph.t -> weights -> Matching.matching -> dual -> bool
(** Global re-check of the conditions above (used by tests; the LCP
    verifier checks the same conditions locally). *)
