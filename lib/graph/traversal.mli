(** Breadth-first and depth-first primitives: distances, components,
    radius-r balls (the heart of the LOCAL model), and tree utilities. *)

val bfs_distances : Graph.t -> Graph.node -> (Graph.node * int) list
(** Distances from the source to every node reachable from it,
    in increasing identifier order. *)

val distance : Graph.t -> Graph.node -> Graph.node -> int option
(** Shortest-path length, [None] when disconnected. *)

val shortest_path : Graph.t -> Graph.node -> Graph.node -> Graph.node list option
(** A shortest path (list of nodes, endpoints included). *)

val ball : Graph.t -> Graph.node -> int -> Graph.node list
(** [ball g v r] is [V[v, r]]: all nodes within distance [r] of [v],
    sorted. This is exactly the paper's radius-[r] neighbourhood. *)

val component : Graph.t -> Graph.node -> Graph.node list
(** Connected component containing the node, sorted. *)

val components : Graph.t -> Graph.node list list
(** All connected components, each sorted, ordered by smallest member. *)

val is_connected : Graph.t -> bool
(** The empty graph counts as connected. *)

val spanning_tree : Graph.t -> Graph.node -> (Graph.node * Graph.node) list
(** BFS spanning tree of the component of the given root, as a list of
    (child, parent) pairs — the root has no pair. *)

val dfs_intervals : Graph.t -> Graph.node -> (Graph.node * (int * int)) list
(** Discovery/finishing times of a DFS over the component of the root,
    as used by the M2-model identifier scheme of Section 7.1. Times
    count node events: each node is discovered once and finished once,
    so times range over [0 .. 2·size-1]. *)

val eccentricity : Graph.t -> Graph.node -> int
(** Largest distance from the node within its component. *)

val diameter : Graph.t -> int
(** Largest eccentricity; raises [Invalid_argument] if the graph is
    empty or disconnected. *)
