(** The graph6 interchange format (McKay's nauty suite), for graphs on
    up to 62 nodes — handy for importing standard test graphs and
    exporting counterexamples to other tools. Nodes are [0..n-1]. *)

val encode : Graph.t -> string
(** Raises [Invalid_argument] when n > 62 or the node ids are not
    exactly [0..n-1] (relabel first). *)

val decode : string -> Graph.t
(** Raises [Invalid_argument] on malformed input. *)
