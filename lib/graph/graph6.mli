(** The graph6 interchange format (McKay's nauty suite) — handy for
    importing standard test graphs, exporting counterexamples to other
    tools, and as the graph payload of the wire protocol. Nodes are
    [0..n-1]. Graphs with n <= 62 use the classic single-byte size
    header; larger graphs (up to {!max_nodes}) use nauty's standard
    ['~'] / ["~~"] multi-byte headers, so bench-sized instances
    (n = 4096) round-trip over the wire. *)

val max_nodes : int
(** Hard cap on n (2^20), bounding the work and memory a decoder can
    be made to spend by a small hostile header. *)

val encode : Graph.t -> string
(** Raises [Invalid_argument] when n > {!max_nodes} or the node ids are
    not exactly [0..n-1] (relabel first). For n <= 62 the output is
    byte-identical to the historic single-byte format. *)

val decode : string -> Graph.t
(** Raises [Invalid_argument] on malformed input. *)

val decode_res : string -> (Graph.t, string) result
(** Total: malformed input — wrong length, bytes outside the graph6
    alphabet, truncated or non-minimal size headers, n over the cap —
    is an [Error], never an exception. This is the entry point for
    untrusted network bytes. *)

val decode_opt : string -> Graph.t option
(** {!decode_res} with the reason discarded. *)
