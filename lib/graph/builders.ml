let cycle_of_ids ids =
  match ids with
  | [] | [ _ ] | [ _; _ ] -> invalid_arg "Builders.cycle_of_ids: need >= 3 nodes"
  | first :: _ ->
      let rec close acc = function
        | [ last ] -> (last, first) :: acc
        | a :: (b :: _ as rest) -> close ((a, b) :: acc) rest
        | [] -> acc
      in
      Graph.create ~nodes:ids ~edges:(close [] ids)

let cycle n =
  if n < 3 then invalid_arg "Builders.cycle: need n >= 3";
  cycle_of_ids (List.init n Fun.id)

let path_of_ids ids =
  match ids with
  | [] -> invalid_arg "Builders.path_of_ids: need >= 1 node"
  | _ ->
      let rec link acc = function
        | [] | [ _ ] -> acc
        | a :: (b :: _ as rest) -> link ((a, b) :: acc) rest
      in
      Graph.create ~nodes:ids ~edges:(link [] ids)

let path n =
  if n < 1 then invalid_arg "Builders.path: need n >= 1";
  path_of_ids (List.init n Fun.id)

let complete n =
  let vs = List.init n Fun.id in
  let edges =
    List.concat_map (fun u -> List.filter_map (fun v -> if u < v then Some (u, v) else None) vs) vs
  in
  Graph.create ~nodes:vs ~edges

let complete_bipartite a b =
  let left = List.init a Fun.id in
  let right = List.init b (fun i -> a + i) in
  let edges = List.concat_map (fun u -> List.map (fun v -> (u, v)) right) left in
  Graph.create ~nodes:(left @ right) ~edges

let star k =
  Graph.create
    ~nodes:(List.init (k + 1) Fun.id)
    ~edges:(List.init k (fun i -> (0, i + 1)))

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Builders.grid: need positive dims";
  let id r c = (r * cols) + c in
  let nodes = List.init (rows * cols) Fun.id in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.create ~nodes ~edges:!edges

let hypercube d =
  if d < 0 then invalid_arg "Builders.hypercube: negative dimension";
  let size = 1 lsl d in
  let nodes = List.init size Fun.id in
  let edges = ref [] in
  List.iter
    (fun v ->
      for b = 0 to d - 1 do
        let u = v lxor (1 lsl b) in
        if v < u then edges := (v, u) :: !edges
      done)
    nodes;
  Graph.create ~nodes ~edges:!edges

let petersen =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  let spokes = List.init 5 (fun i -> (i, 5 + i)) in
  Graph.create ~nodes:(List.init 10 Fun.id) ~edges:(outer @ inner @ spokes)

let binary_tree depth =
  if depth < 0 then invalid_arg "Builders.binary_tree: negative depth";
  let size = (1 lsl (depth + 1)) - 1 in
  let nodes = List.init size Fun.id in
  let edges =
    List.concat_map
      (fun v ->
        List.filter (fun (_, c) -> c < size) [ (v, (2 * v) + 1); (v, (2 * v) + 2) ])
      nodes
  in
  Graph.create ~nodes ~edges

let caterpillar spine legs =
  if spine < 1 || legs < 0 then invalid_arg "Builders.caterpillar";
  let g = ref (path spine) in
  let next = ref spine in
  for s = 0 to spine - 1 do
    for _ = 1 to legs do
      g := Graph.add_edge !g s !next;
      incr next
    done
  done;
  !g

let wheel k =
  if k < 3 then invalid_arg "Builders.wheel: need k >= 3";
  let rim = cycle k in
  let hub = k in
  List.fold_left (fun g v -> Graph.add_edge g hub v) rim (List.init k Fun.id)

let disjoint_cycles lengths =
  let _, g =
    List.fold_left
      (fun (base, acc) len ->
        if len < 3 then invalid_arg "Builders.disjoint_cycles: length < 3";
        let ids = List.init len (fun i -> base + i) in
        (base + len, Graph.union_disjoint acc (cycle_of_ids ids)))
      (0, Graph.empty) lengths
  in
  g
