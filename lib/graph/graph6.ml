(* graph6: byte 0 is n + 63 (n <= 62); then the upper-triangle
   adjacency bits x(0,1), x(0,2), x(1,2), x(0,3), … (column by column),
   packed big-endian into 6-bit groups, each offset by 63. *)

let check_contiguous g =
  let n = Graph.n g in
  if n > 62 then invalid_arg "Graph6.encode: supports n <= 62";
  if Graph.nodes g <> List.init n Fun.id then
    invalid_arg "Graph6.encode: nodes must be exactly 0..n-1";
  n

let encode g =
  let n = check_contiguous g in
  let bits = ref [] in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      bits := Graph.mem_edge g i j :: !bits
    done
  done;
  let bits = List.rev !bits in
  let buf = Buffer.create 16 in
  Buffer.add_char buf (Char.chr (n + 63));
  let rec pack = function
    | [] -> ()
    | l ->
        let rec take6 acc k = function
          | rest when k = 6 -> (acc, rest)
          | [] -> take6 (acc * 2) (k + 1) []
          | b :: rest -> take6 ((acc * 2) + if b then 1 else 0) (k + 1) rest
        in
        let group, rest = take6 0 0 l in
        Buffer.add_char buf (Char.chr (group + 63));
        pack rest
  in
  pack bits;
  Buffer.contents buf

let decode s =
  if String.length s < 1 then invalid_arg "Graph6.decode: empty";
  let n = Char.code s.[0] - 63 in
  if n < 0 || n > 62 then invalid_arg "Graph6.decode: bad size byte";
  let need = (n * (n - 1) / 2 + 5) / 6 in
  if String.length s <> 1 + need then
    invalid_arg
      (Printf.sprintf "Graph6.decode: expected %d data bytes, got %d" need
         (String.length s - 1));
  let bit idx =
    let byte = Char.code s.[1 + (idx / 6)] - 63 in
    if byte < 0 || byte > 63 then invalid_arg "Graph6.decode: bad data byte";
    byte lsr (5 - (idx mod 6)) land 1 = 1
  in
  let g = ref (List.fold_left Graph.add_node Graph.empty (List.init n Fun.id)) in
  let idx = ref 0 in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      if bit !idx then g := Graph.add_edge !g i j;
      incr idx
    done
  done;
  !g
