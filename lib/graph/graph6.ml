(* graph6 (McKay's nauty suite): a size header, then the
   upper-triangle adjacency bits x(0,1), x(0,2), x(1,2), x(0,3), …
   (column by column), packed big-endian into 6-bit groups, each
   offset by 63 so every byte is printable ASCII.

   Size header, exactly as nauty specifies it:
     n <= 62            one byte, n + 63
     63 <= n <= 258047  '~' then three bytes holding n in 18 bits
     n  > 258047        '~~' then six bytes holding n in 36 bits
   (each 6-bit group again offset by 63, most significant first).

   Encoding works directly on a [Bytes.t] — one bit-set per edge, no
   intermediate bit list — so wire-sized graphs (bench uses n up to
   4096, ~1.4 MB of data bytes) encode without allocating millions of
   list cells.  The n <= 62 output is byte-identical to the original
   single-byte implementation: same header, same packing. *)

(* Frames cross a trust boundary, so decoding also has to be cheap to
   reject: n is capped well below anything whose O(n^2) bit loop or
   data-byte allocation could be weaponised by a 9-byte header. *)
let max_nodes = 1 lsl 20

let check_contiguous g =
  let n = Graph.n g in
  if n > max_nodes then
    invalid_arg (Printf.sprintf "Graph6.encode: supports n <= %d" max_nodes);
  if Graph.nodes g <> List.init n Fun.id then
    invalid_arg "Graph6.encode: nodes must be exactly 0..n-1";
  n

let size_header n =
  if n <= 62 then String.make 1 (Char.chr (n + 63))
  else if n <= 258047 then
    String.init 4 (fun k ->
        if k = 0 then '~'
        else Char.chr (((n lsr (6 * (3 - k))) land 0x3f) + 63))
  else
    String.init 8 (fun k ->
        if k < 2 then '~'
        else Char.chr (((n lsr (6 * (7 - k))) land 0x3f) + 63))

(* Bit index of edge (i, j), i < j, in column-by-column order:
   columns 1..j-1 hold j(j-1)/2 bits, then row i inside column j. *)
let edge_bit_index i j = (j * (j - 1) / 2) + i

let encode g =
  let n = check_contiguous g in
  let need = ((n * (n - 1) / 2) + 5) / 6 in
  (* accumulate the raw 6-bit groups, then apply the +63 printable
     offset in one pass at the end *)
  let data = Bytes.make need '\000' in
  Graph.iter_edges
    (fun u v ->
      let idx = edge_bit_index (min u v) (max u v) in
      let byte = idx / 6 and bit = 5 - (idx mod 6) in
      Bytes.set data byte
        (Char.chr (Char.code (Bytes.get data byte) lor (1 lsl bit))))
    g;
  size_header n
  ^ String.init need (fun k -> Char.chr (Char.code (Bytes.get data k) + 63))

(* Decoding is total: network bytes go through [decode_res], which
   never raises — every byte is range-checked and the length must
   match the header's n exactly. *)

let ( let* ) = Result.bind

let group s k =
  let c = Char.code s.[k] - 63 in
  if c < 0 || c > 63 then
    Error (Printf.sprintf "Graph6: byte %d is not a graph6 character" k)
  else Ok c

(* The size header, returned with the offset of the first data byte. *)
let decode_size s =
  let len = String.length s in
  if len = 0 then Error "Graph6: empty string"
  else if s.[0] <> '~' then
    let* n = group s 0 in
    Ok (n, 1)
  else if len >= 2 && s.[1] <> '~' then
    if len < 4 then Error "Graph6: truncated 3-byte size header"
    else
      let* b1 = group s 1 in
      let* b2 = group s 2 in
      let* b3 = group s 3 in
      let n = (b1 lsl 12) lor (b2 lsl 6) lor b3 in
      if n < 63 then Error "Graph6: non-minimal 3-byte size header"
      else Ok (n, 4)
  else if len < 8 then Error "Graph6: truncated 6-byte size header"
  else
    let rec go k acc =
      if k = 8 then Ok acc
      else
        let* b = group s k in
        go (k + 1) ((acc lsl 6) lor b)
    in
    let* n = go 2 0 in
    if n < 258048 then Error "Graph6: non-minimal 6-byte size header"
    else Ok (n, 8)

let decode_res s =
  let* n, off = decode_size s in
  if n > max_nodes then
    Error (Printf.sprintf "Graph6: n = %d exceeds the %d-node cap" n max_nodes)
  else
    let need = ((n * (n - 1) / 2) + 5) / 6 in
    if String.length s <> off + need then
      Error
        (Printf.sprintf "Graph6: expected %d data bytes, got %d" need
           (String.length s - off))
    else
      let rec check k =
        if k = String.length s then Ok ()
        else
          let* _ = group s k in
          check (k + 1)
      in
      let* () = check off in
      let bit idx =
        (Char.code s.[off + (idx / 6)] - 63) lsr (5 - (idx mod 6)) land 1 = 1
      in
      let edges = ref [] in
      let idx = ref 0 in
      for j = 1 to n - 1 do
        for i = 0 to j - 1 do
          if bit !idx then edges := (i, j) :: !edges;
          incr idx
        done
      done;
      Ok (Graph.create ~nodes:(List.init n Fun.id) ~edges:!edges)

let decode_opt s = Result.to_option (decode_res s)

let decode s =
  match decode_res s with Ok g -> g | Error msg -> invalid_arg msg
