module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type node = int
type t = { adj : IntSet.t IntMap.t; m : int }

let empty = { adj = IntMap.empty; m = 0 }
let is_empty g = IntMap.is_empty g.adj
let mem_node g v = IntMap.mem v g.adj

let mem_edge g u v =
  match IntMap.find_opt u g.adj with
  | None -> false
  | Some s -> IntSet.mem v s

let neighbours g v =
  match IntMap.find_opt v g.adj with
  | None -> invalid_arg (Printf.sprintf "Graph.neighbours: unknown node %d" v)
  | Some s -> IntSet.elements s

let degree g v =
  match IntMap.find_opt v g.adj with
  | None -> invalid_arg (Printf.sprintf "Graph.degree: unknown node %d" v)
  | Some s -> IntSet.cardinal s

let iter_neighbours f g v =
  match IntMap.find_opt v g.adj with
  | None -> invalid_arg (Printf.sprintf "Graph.iter_neighbours: unknown node %d" v)
  | Some s -> IntSet.iter f s

let fold_neighbours f g v init =
  match IntMap.find_opt v g.adj with
  | None -> invalid_arg (Printf.sprintf "Graph.fold_neighbours: unknown node %d" v)
  | Some s -> IntSet.fold f s init

let nodes g = IntMap.fold (fun v _ acc -> v :: acc) g.adj [] |> List.rev
let n g = IntMap.cardinal g.adj
let m g = g.m

let fold_nodes f g init = IntMap.fold (fun v _ acc -> f v acc) g.adj init
let iter_nodes f g = IntMap.iter (fun v _ -> f v) g.adj

let fold_edges f g init =
  IntMap.fold
    (fun u s acc -> IntSet.fold (fun v acc -> if u < v then f u v acc else acc) s acc)
    g.adj init

let iter_edges f g = fold_edges (fun u v () -> f u v) g ()
let edges g = fold_edges (fun u v acc -> (u, v) :: acc) g [] |> List.rev

let max_degree g = fold_nodes (fun v acc -> max acc (degree g v)) g 0
let max_id g = fold_nodes (fun v acc -> max acc v) g 0

let add_node g v =
  if v < 0 then invalid_arg "Graph.add_node: negative identifier";
  if mem_node g v then g else { g with adj = IntMap.add v IntSet.empty g.adj }

let add_edge g u v =
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  let g = add_node (add_node g u) v in
  if mem_edge g u v then g
  else
    let upd w x adj = IntMap.add w (IntSet.add x (IntMap.find w adj)) adj in
    { adj = upd u v (upd v u g.adj); m = g.m + 1 }

let remove_edge g u v =
  if not (mem_edge g u v) then g
  else
    let upd w x adj = IntMap.add w (IntSet.remove x (IntMap.find w adj)) adj in
    { adj = upd u v (upd v u g.adj); m = g.m - 1 }

let remove_node g v =
  if not (mem_node g v) then g
  else
    let g = IntSet.fold (fun u g -> remove_edge g u v) (IntMap.find v g.adj) g in
    { g with adj = IntMap.remove v g.adj }

let create ~nodes ~edges =
  let g = List.fold_left add_node empty nodes in
  List.fold_left
    (fun g (u, v) ->
      if not (mem_node g u && mem_node g v) then
        invalid_arg
          (Printf.sprintf "Graph.create: edge (%d, %d) has unknown endpoint" u v);
      add_edge g u v)
    g edges

let of_edges es =
  List.fold_left (fun g (u, v) -> add_edge g u v) empty es

let induced g vs =
  let keep = IntSet.of_list (List.filter (mem_node g) vs) in
  let adj =
    IntSet.fold
      (fun v acc -> IntMap.add v (IntSet.inter keep (IntMap.find v g.adj)) acc)
      keep IntMap.empty
  in
  let m = IntMap.fold (fun _ s acc -> acc + IntSet.cardinal s) adj 0 / 2 in
  { adj; m }

let relabel g f =
  let adj =
    fold_nodes
      (fun v acc ->
        let v' = f v in
        if v' < 0 then invalid_arg "Graph.relabel: negative identifier";
        if IntMap.mem v' acc then invalid_arg "Graph.relabel: not injective";
        IntMap.add v' (IntSet.map f (IntMap.find v g.adj)) acc)
      g IntMap.empty
  in
  { adj; m = g.m }

let union_disjoint g1 g2 =
  let adj =
    IntMap.union
      (fun v _ _ ->
        invalid_arg (Printf.sprintf "Graph.union_disjoint: shared node %d" v))
      g1.adj g2.adj
  in
  { adj; m = g1.m + g2.m }

let equal g1 g2 = IntMap.equal IntSet.equal g1.adj g2.adj
let compare g1 g2 = IntMap.compare IntSet.compare g1.adj g2.adj

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>graph{n=%d; m=%d;@ nodes=[%a];@ edges=[%a]}@]"
    (n g) (m g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       Format.pp_print_int)
    (nodes g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges g)

let is_subgraph h ~of_:g =
  List.for_all (mem_node g) (nodes h)
  && List.for_all (fun (u, v) -> mem_edge g u v) (edges h)

let complement g =
  let vs = nodes g in
  List.fold_left
    (fun acc u ->
      List.fold_left
        (fun acc v -> if u < v && not (mem_edge g u v) then add_edge acc u v else acc)
        acc vs)
    (List.fold_left add_node empty vs)
    vs

let line_graph g =
  let es = edges g in
  let assoc = List.mapi (fun i e -> (i, e)) es in
  let share (a, b) (c, d) = a = c || a = d || b = c || b = d in
  let lg =
    List.fold_left
      (fun acc (i, ei) ->
        let acc = add_node acc i in
        List.fold_left
          (fun acc (j, ej) ->
            if i < j && share ei ej then add_edge acc i j else acc)
          acc assoc)
      empty assoc
  in
  (lg, assoc)
