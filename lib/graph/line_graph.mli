(** Line-graph recognition — the paper's second LCP(0) example.

    Two independent characterisations are implemented:

    - {b Krausz}: a graph is a line graph iff its edge set partitions
      into cliques with every node in at most two cliques (found by
      backtracking; ground truth in tests).
    - {b Beineke}: a graph is a line graph iff it contains none of nine
      forbidden induced subgraphs. Rather than transcribing the nine
      graphs, we {e derive} them: the minimal non-line graphs on at
      most 6 nodes, computed from {!Enumerate.all_graphs} with the
      Krausz test. The derived list is checked to have exactly nine
      members, beginning with the claw K_{1,3}.

    The Beineke form is what makes the property locally checkable:
    every forbidden pattern fits inside a radius-5 ball. *)

val is_line_graph_krausz : Graph.t -> bool
(** Exponential backtracking; intended for small graphs. *)

val forbidden_subgraphs : unit -> Graph.t list
(** Beineke's nine minimal non-line graphs (computed once, memoised). *)

val is_line_graph : Graph.t -> bool
(** No forbidden induced subgraph. Polynomial (pattern size ≤ 6). *)

val of_root_graph : Graph.t -> Graph.t
(** The line graph L(G) of a root graph (fresh contiguous ids) —
    a generator of guaranteed yes-instances. *)
