(** Enumeration of rooted trees up to isomorphism — the family [F_k] of
    Section 6.2, whose size is OEIS A000081 (1, 1, 2, 4, 9, 20, 48,
    115, 286, …) and in particular grows as [2^Θ(k)]. *)

type rooted = { root : Graph.node; tree : Graph.t }
(** A tree with a distinguished root. Nodes are [0..k-1] with the root
    at 0, children numbered depth-first in canonical order. *)

val rooted_trees : int -> rooted list
(** All rooted trees with [k >= 1] nodes, one per isomorphism class. *)

val count_rooted_trees : int -> int
(** [List.length (rooted_trees k)], computed without materialising the
    graphs (recurrence-free: still enumerates canonical codes). *)

val canonical_code : Graph.t -> Graph.node -> string
(** Canonical string code of a tree rooted at the given node;
    two rooted trees are isomorphic iff their codes are equal. Raises
    [Invalid_argument] when the graph is not a tree. *)

val is_tree : Graph.t -> bool
(** Connected and [m = n - 1]. *)
