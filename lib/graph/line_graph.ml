module IntSet = Set.Make (Int)

(* Krausz partition: cover the edges by cliques, each edge in exactly
   one clique, each node in at most two cliques. Backtracking over the
   lexicographically first uncovered edge; candidate cliques are all
   cliques containing that edge (small graphs only). *)
let is_line_graph_krausz g =
  let clique_count = Hashtbl.create 16 in
  Graph.iter_nodes (fun v -> Hashtbl.replace clique_count v 0) g;
  let covered = Hashtbl.create 16 in
  let key u v = (min u v, max u v) in
  let bump v d = Hashtbl.replace clique_count v (Hashtbl.find clique_count v + d) in
  (* All cliques (as sorted lists) that contain edge (u,v), all of whose
     edges are uncovered, and whose nodes have clique_count < 2. *)
  let cliques_through u v =
    let common =
      List.filter
        (fun w ->
          Graph.mem_edge g u w && Graph.mem_edge g v w
          && Hashtbl.find clique_count w < 2)
        (Graph.nodes g)
    in
    (* Grow cliques within [common] (plus u, v). *)
    let rec extend clique candidates acc =
      let acc = clique :: acc in
      match candidates with
      | [] -> acc
      | w :: rest ->
          let acc =
            if
              List.for_all (fun x -> Graph.mem_edge g x w) clique
              && List.for_all
                   (fun x -> not (Hashtbl.mem covered (key x w)))
                   clique
            then extend (w :: clique) rest acc
            else acc
          in
          extend clique rest acc
    in
    extend [ u; v ] common []
    |> List.filter (fun cl -> List.length cl >= 2)
  in
  let uncovered_edge () =
    Graph.fold_edges
      (fun u v acc ->
        match acc with
        | Some _ -> acc
        | None -> if Hashtbl.mem covered (key u v) then None else Some (u, v))
      g None
  in
  let rec solve () =
    match uncovered_edge () with
    | None -> true
    | Some (u, v) ->
        if Hashtbl.find clique_count u >= 2 || Hashtbl.find clique_count v >= 2
        then false
        else
          List.exists
            (fun clique ->
              (* Claim the clique. *)
              let edges_of_clique =
                List.concat_map
                  (fun x ->
                    List.filter_map
                      (fun y -> if x < y then Some (x, y) else None)
                      clique)
                  clique
              in
              List.iter (fun e -> Hashtbl.replace covered e ()) edges_of_clique;
              List.iter (fun x -> bump x 1) clique;
              let ok = solve () in
              if not ok then begin
                List.iter (fun e -> Hashtbl.remove covered e) edges_of_clique;
                List.iter (fun x -> bump x (-1)) clique
              end;
              ok)
            (cliques_through u v)
  in
  solve ()

let forbidden = ref None

let forbidden_subgraphs () =
  match !forbidden with
  | Some fs -> fs
  | None ->
      (* Minimal non-line graphs on <= 6 nodes: not a line graph, but
         every proper induced subgraph is one. Beineke's theorem says
         there are exactly nine and that they characterise line
         graphs. *)
      let candidates =
        List.concat_map Enumerate.all_graphs [ 4; 5; 6 ]
        |> List.filter Traversal.is_connected
        |> List.filter (fun g -> not (is_line_graph_krausz g))
      in
      let minimal g =
        List.for_all
          (fun v ->
            is_line_graph_krausz (Graph.remove_node g v))
          (Graph.nodes g)
      in
      let fs = List.filter minimal candidates in
      forbidden := Some fs;
      fs

let is_line_graph g =
  not
    (List.exists
       (fun pattern -> Subgraph_iso.contains_induced ~pattern g)
       (forbidden_subgraphs ()))

let of_root_graph g = fst (Graph.line_graph g)
