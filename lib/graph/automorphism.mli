(** Graph automorphisms. Section 6.1 classifies graphs as symmetric
    (some non-trivial automorphism) or asymmetric; Section 6.2 uses
    fixpoint-free automorphisms of trees. Backtracking with degree
    pruning — fine for the experiment sizes. *)

val automorphisms : Graph.t -> (Graph.node -> Graph.node) list
(** All automorphisms (including the identity), as functions defined on
    the graph's nodes. Exponential in the worst case. *)

val count_automorphisms : Graph.t -> int

val nontrivial_automorphism : Graph.t -> (Graph.node * Graph.node) list option
(** A non-identity automorphism as an explicit mapping, or [None]. The
    search stops at the first witness. *)

val is_symmetric : Graph.t -> bool
(** Has a non-trivial automorphism. *)

val is_asymmetric : Graph.t -> bool

val fixpoint_free_automorphism : Graph.t -> (Graph.node * Graph.node) list option
(** An automorphism moving every node, or [None]. *)

val has_fixpoint_free_symmetry : Graph.t -> bool

val is_automorphism : Graph.t -> (Graph.node * Graph.node) list -> bool
(** Checks that the mapping is a bijection on the node set preserving
    adjacency and non-adjacency. *)
