(** Hamiltonian cycles and paths by backtracking search. Used by the
    Θ(log n) Hamiltonian-cycle scheme (Section 5.1): a Hamiltonian
    cycle is certified as a spanning path plus its closing edge. *)

val hamiltonian_cycle : Graph.t -> Graph.node list option
(** A Hamiltonian cycle as a node sequence (start node not repeated),
    or [None]. Graphs with fewer than 3 nodes have no Hamiltonian
    cycle. *)

val hamiltonian_path : Graph.t -> Graph.node list option
(** A Hamiltonian path, or [None]. A single node counts as a path. *)

val is_hamiltonian_cycle : Graph.t -> Graph.node list -> bool
(** Checks that the sequence visits every node exactly once along
    edges of the graph and closes up. *)
