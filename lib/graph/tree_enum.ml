type rooted = { root : Graph.node; tree : Graph.t }

let is_tree g =
  (not (Graph.is_empty g)) && Traversal.is_connected g && Graph.m g = Graph.n g - 1

(* Canonical code: "(" codes-of-children-sorted ")". *)
let canonical_code g root =
  if not (is_tree g) then invalid_arg "Tree_enum.canonical_code: not a tree";
  let rec code parent v =
    let children = List.filter (fun u -> u <> parent) (Graph.neighbours g v) in
    (* Children in non-increasing code order, matching the order used
       by the shape generator below. *)
    let sub =
      List.map (code v) children |> List.sort (fun a b -> String.compare b a)
    in
    "(" ^ String.concat "" sub ^ ")"
  in
  code (-1) root

(* Abstract rooted trees as lists of children, generated in canonical
   (sorted) order so each isomorphism class appears once. *)
type shape = Node of shape list

let rec shape_code (Node children) =
  "(" ^ String.concat "" (List.map shape_code children) ^ ")"

(* All shapes with k nodes. Children are kept in non-increasing code
   order; we generate forests of total size k-1 with that invariant. *)
let rec shapes k =
  if k < 1 then []
  else if k = 1 then [ Node [] ]
  else
    (* forest of size k-1 where each tree's code <= bound (max allowed
       code for the next tree, to keep non-increasing order). *)
    let rec forests size bound =
      if size = 0 then [ [] ]
      else
        List.concat_map
          (fun t_size ->
            List.concat_map
              (fun t ->
                let c = shape_code t in
                if compare c bound <= 0 then
                  List.map (fun rest -> t :: rest) (forests (size - t_size) c)
                else [])
              (shapes t_size))
          (List.init size (fun i -> i + 1))
    in
    List.map (fun f -> Node f) (forests (k - 1) "\xff")

let shape_to_graph shape =
  let next = ref 0 in
  let g = ref Graph.empty in
  let rec build parent (Node children) =
    let id = !next in
    incr next;
    g := Graph.add_node !g id;
    (match parent with Some p -> g := Graph.add_edge !g p id | None -> ());
    List.iter (build (Some id)) children
  in
  build None shape;
  { root = 0; tree = !g }

let rooted_trees k =
  if k < 1 then invalid_arg "Tree_enum.rooted_trees: need k >= 1";
  List.map shape_to_graph (shapes k)

let count_rooted_trees k = List.length (shapes k)
