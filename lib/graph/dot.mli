(** Graphviz DOT export, for eyeballing instances, proofs and the
    lower-bound constructions ([lcp dot], or programmatically). *)

val of_graph :
  ?name:string ->
  ?node_attrs:(Graph.node -> (string * string) list) ->
  ?edge_attrs:(Graph.node -> Graph.node -> (string * string) list) ->
  Graph.t ->
  string
(** Undirected DOT ([graph { … }]). Attribute callbacks return
    [(key, value)] pairs rendered as [key="value"]. *)

val of_digraph : ?name:string -> Digraph.t -> string

val escape : string -> string
(** Escape for a double-quoted DOT string. *)
