(** Canonical forms of small graphs (Section 6.1 needs a canonical form
    [C(G)] with node set [{1, …, n}] and shifted copies [C(G, i)]).

    The canonical form is computed by brute force over node
    permutations restricted to degree classes, so it is meant for the
    small graphs of the enumeration experiments (n ≤ 9 or so). *)

val canonical_key : Graph.t -> string
(** An isomorphism-invariant key: two graphs have equal keys iff they
    are isomorphic. *)

val canonical_form : Graph.t -> Graph.t
(** [canonical_form g] is the isomorphic copy of [g] on node set
    [{1, …, n}] whose adjacency matrix is lexicographically smallest.
    Satisfies: [canonical_form g = canonical_form h] iff [g ≅ h]. *)

val shifted : Graph.t -> int -> Graph.t
(** [shifted (canonical_form g) i] is the paper's [C(G, i)]: node [v]
    becomes [i + v]. Works on any graph. *)
