(** Sections 6.1/6.2 — counting lower bounds via the ⊙ construction:
    canonical copies of two seeds joined by a k-node path. For
    asymmetric connected seeds, G₁ ⊙ G₂ is symmetric iff G₁ ≅ G₂; for
    rooted trees (k even, copies attached at the roots), it has a
    fixpoint-free symmetry iff the trees are isomorphic as rooted
    trees. Proofs of G ⊙ G are compared on the window U = {1..2r+1};
    a collision lets us splice two proofs onto the asymmetric G₁ ⊙ G₂
    and fool the verifier. *)

val odot : Graph.t -> Graph.t -> Graph.t
(** [odot g1 g2] on equal-sized seeds: C(G₁, k) on {k+1..2k},
    C(G₂, 2k) on {2k+1..3k}, path (k+1, 1, 2, …, k, 2k+1). *)

val odot_rooted : Tree_enum.rooted -> Tree_enum.rooted -> Graph.t
(** Root-respecting variant for trees. *)

type outcome =
  | Fooled of {
      glued : Graph.t;
      instance : Instance.t;
      proof : Proof.t;
      genuinely_no : bool;
    }
  | Resisted of { family_size : int; distinct_windows : int }
  | Prover_failed of Graph.t

val window_signature : Proof.t -> radius:int -> string

val splice : k:int -> radius:int -> Proof.t -> Proof.t -> Proof.t
(** The paper's inheritance: copy-1 block and window from the first
    proof, everything else from the second. *)

val attack_with :
  Scheme.t ->
  family:'a list ->
  combine:('a -> 'a -> Graph.t) ->
  size:int ->
  is_yes:(Graph.t -> bool) ->
  outcome

val attack_symmetric : Scheme.t -> family:Graph.t list -> outcome
(** Section 6.1; seeds from {!Enumerate.asymmetric_connected}. *)

val attack_trees : Scheme.t -> family:Tree_enum.rooted list -> outcome
(** Section 6.2; seeds from {!Tree_enum.rooted_trees} with even size. *)

val forced_collision_bound : bits:int -> radius:int -> int
(** The pigeonhole threshold: at most [2^(bits·(2r+1))] distinct
    windows exist, so any larger family must collide — the paper's
    counting argument, explicit. *)
