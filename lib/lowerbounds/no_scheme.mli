(** Table 1(a), last row: "connected graph / general" has a dash — no
    locally checkable proof of {e any} size exists when the family
    allows disconnected inputs. The argument is one line: take two
    proved connected yes-instances on disjoint identifier sets; their
    disjoint union is a no-instance, yet every node's radius-r view
    (and proof) is exactly what it was in its own accepted component,
    so every verifier accepts.

    Unlike the bit-counting attacks, this one defeats {e every} scheme,
    with any proof size — which is why the attack function takes the
    scheme as a parameter and always wins (provided the scheme is
    complete for the two components). *)

type outcome =
  | Fooled of { instance : Instance.t; proof : Proof.t }
      (** The disconnected union, accepted by all nodes. *)
  | Prover_failed
  | Unexpectedly_rejected of Graph.node list
      (** Cannot happen for a genuinely local verifier; would indicate
          the "verifier" peeks outside its view. *)

val attack :
  Scheme.t -> component:(unit -> Instance.t) -> other:(unit -> Instance.t) -> outcome
(** [attack scheme ~component ~other] — the two thunks must build
    yes-instances on disjoint identifier sets with equal globals. *)

val connectivity_has_no_scheme : Scheme.t -> bool
(** Runs {!attack} with two connected random graphs against a scheme
    that claims to verify connectivity; [true] when the scheme was
    fooled (i.e. the impossibility holds for it). *)
