(** Sections 6.1 and 6.2 — counting lower bounds for symmetric graphs
    (Ω(n²)) and fixpoint-free tree symmetry (Ω(n) on trees).

    The construction G₁ ⊙ G₂ joins canonical copies of G₁ and G₂ by a
    k-node path: C(G₁, k) on identifiers {k+1..2k}, C(G₂, 2k) on
    {2k+1..3k}, and the path (k+1, 1, 2, …, k, 2k+1). For asymmetric
    G₁, G₂: G₁ ⊙ G₂ is symmetric iff G₁ ≅ G₂ (for trees with k even:
    has a fixpoint-free symmetry iff G₁ = G₂).

    The attack: for every G ∈ F_k, prove G ⊙ G with the scheme under
    test; compare the proof bits on the window U = {1, …, 2r+1}. If two
    distinct G₁, G₂ agree on U (guaranteed once |F_k| exceeds the
    number of distinct windows — the paper's counting argument),
    splice the proofs into G₁ ⊙ G₂ and run the verifier: an accepted
    asymmetric graph. Honest Θ(n²)-bit (resp. Θ(n)-bit) schemes never
    collide on the experiment sizes; the claim schemes of [Truncated]
    collide immediately. *)

let odot g1 g2 =
  let k = Graph.n g1 in
  if Graph.n g2 <> k then invalid_arg "Symmetry_lb.odot: sizes differ";
  if k < 2 then invalid_arg "Symmetry_lb.odot: need k >= 2";
  let c1 = Canonical.shifted (Canonical.canonical_form g1) k in
  let c2 = Canonical.shifted (Canonical.canonical_form g2) (2 * k) in
  let path_nodes = List.init k (fun i -> i + 1) in
  let path_edges =
    ((k + 1, 1) :: List.init (k - 1) (fun i -> (i + 1, i + 2)))
    @ [ (k, (2 * k) + 1) ]
  in
  let g =
    List.fold_left Graph.add_node (Graph.union_disjoint c1 c2) path_nodes
  in
  List.fold_left (fun g (u, v) -> Graph.add_edge g u v) g path_edges

(** Root-respecting variant for Section 6.2: copies are attached at
    their {e roots}, and isomorphic rooted trees get identical copies
    (nodes renumbered along the canonical traversal). For k even,
    t₁ ⊙ t₂ has a fixpoint-free symmetry iff t₁ ≅ t₂ as rooted trees:
    a fixpoint-free automorphism of a tree must invert an edge, size
    balance puts that edge at the middle of the joining path, and the
    swap witnesses the rooted isomorphism. *)
let odot_rooted (t1 : Tree_enum.rooted) (t2 : Tree_enum.rooted) =
  let k = Graph.n t1.Tree_enum.tree in
  if Graph.n t2.Tree_enum.tree <> k then
    invalid_arg "Symmetry_lb.odot_rooted: sizes differ";
  let relabel (t : Tree_enum.rooted) shift =
    let order = Tree_code.traversal t.Tree_enum.tree ~root:t.Tree_enum.root in
    let map = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.replace map v (shift + 1 + i)) order;
    Graph.relabel t.Tree_enum.tree (Hashtbl.find map)
  in
  let c1 = relabel t1 k and c2 = relabel t2 (2 * k) in
  let path_nodes = List.init k (fun i -> i + 1) in
  let path_edges =
    ((k + 1, 1) :: List.init (k - 1) (fun i -> (i + 1, i + 2)))
    @ [ (k, (2 * k) + 1) ]
  in
  let g = List.fold_left Graph.add_node (Graph.union_disjoint c1 c2) path_nodes in
  List.fold_left (fun g (u, v) -> Graph.add_edge g u v) g path_edges

type outcome =
  | Fooled of {
      glued : Graph.t;
      instance : Instance.t;
      proof : Proof.t;
      genuinely_no : bool;
    }
  | Resisted of { family_size : int; distinct_windows : int }
  | Prover_failed of Graph.t

let window_signature proof ~radius =
  let nodes = List.init ((2 * radius) + 1) (fun i -> i + 1) in
  String.concat "|" (List.map (fun v -> Bits.to_string (Proof.get proof v)) nodes)

(* Splice per the paper: copy-1 block {k+1..2k} from f(G₁⊙G₁);
   window U = {1..2r+1} common; everything else from f(G₂⊙G₂). *)
let splice ~k ~radius p1 p2 =
  let from_p1 = List.init k (fun i -> k + 1 + i) in
  let window = List.init ((2 * radius) + 1) (fun i -> i + 1) in
  let rest =
    List.init (k - ((2 * radius) + 1)) (fun i -> (2 * radius) + 2 + i)
    @ List.init k (fun i -> (2 * k) + 1 + i)
  in
  let take src nodes p =
    List.fold_left (fun p v -> Proof.set p v (Proof.get src v)) p nodes
  in
  Proof.empty |> take p1 from_p1 |> take p1 window |> take p2 rest

(** [attack_with scheme ~family ~combine ~size ~is_yes] — [family] is a
    list of pairwise non-isomorphic seeds (asymmetric connected graphs
    for 6.1, rooted trees for 6.2); [combine] is the ⊙ operation,
    [size] the number of nodes k of each seed, and [is_yes] the ground
    truth for the property under attack. *)
let attack_with (scheme : Scheme.t) ~family ~combine ~size ~is_yes =
  if family = [] then invalid_arg "Symmetry_lb.attack: empty family";
  let k = size in
  let radius = scheme.Scheme.radius in
  if k < (2 * radius) + 2 then invalid_arg "Symmetry_lb.attack: need k >= 2r + 2";
  let exception Fail of Graph.t in
  try
    let entries =
      List.map
        (fun g ->
          let glued = combine g g in
          let inst = Instance.of_graph glued in
          match scheme.Scheme.prover inst with
          | None -> raise (Fail glued)
          | Some proof ->
              if not (Scheme.accepts scheme inst proof) then raise (Fail glued);
              (g, proof, window_signature proof ~radius))
        family
    in
    (* Find two distinct seeds with equal windows. *)
    let by_sig = Hashtbl.create 64 in
    let collision =
      List.find_map
        (fun (g, proof, s) ->
          match Hashtbl.find_opt by_sig s with
          | Some (g', proof') -> Some ((g', proof'), (g, proof))
          | None ->
              Hashtbl.replace by_sig s (g, proof);
              None)
        entries
    in
    match collision with
    | None ->
        Resisted
          {
            family_size = List.length family;
            distinct_windows = Hashtbl.length by_sig;
          }
    | Some ((g1, p1), (g2, p2)) ->
        let glued = combine g1 g2 in
        let instance = Instance.of_graph glued in
        let proof = splice ~k ~radius p1 p2 in
        let accepted = Scheme.accepts scheme instance proof in
        if accepted then
          Fooled { glued; instance; proof; genuinely_no = not (is_yes glued) }
        else
          Resisted
            {
              family_size = List.length family;
              distinct_windows = Hashtbl.length by_sig;
            }
  with Fail g -> Prover_failed g

(** Section 6.1: symmetric graphs, seeds = asymmetric connected graphs
    on k nodes. *)
let attack_symmetric scheme ~family =
  match family with
  | [] -> invalid_arg "Symmetry_lb.attack_symmetric: empty family"
  | g0 :: _ ->
      attack_with scheme ~family ~combine:odot ~size:(Graph.n g0)
        ~is_yes:Automorphism.is_symmetric

(** Section 6.2: fixpoint-free symmetry on trees, seeds = rooted trees
    on an even number k of nodes. *)
let attack_trees scheme ~family =
  match family with
  | [] -> invalid_arg "Symmetry_lb.attack_trees: empty family"
  | t0 :: _ ->
      let k = Graph.n t0.Tree_enum.tree in
      if k mod 2 = 1 then invalid_arg "Symmetry_lb.attack_trees: need even k";
      attack_with scheme ~family ~combine:odot_rooted ~size:k
        ~is_yes:Automorphism.has_fixpoint_free_symmetry

(** The paper's counting inequality, made explicit for the report:
    a scheme of [bits] per node has at most [2^(bits·(2r+1)+1)]
    distinct windows, so any family larger than that must collide. *)
let forced_collision_bound ~bits ~radius =
  let window_bits = bits * ((2 * radius) + 1) in
  if window_bits >= 62 then max_int else 1 lsl window_bits
