(** Section 5.3 / Figure 1 — gluing cycles together.

    Colour each edge {a, b} of K_{n,n} by the signature c(a, b) of the
    proved yes-instance C(a, b) (labels + proof bits within distance
    2r+1 of a or b); find a monochromatic 4-cycle (the k = 2 case of
    Bondy–Simonovits); glue the two corresponding n-cycles into a
    2n-cycle inheriting labels and proofs. Every node's view in the
    glued cycle matches a view of an accepted yes-instance, so
    acceptance is unanimous; if the glued instance is a no-instance the
    scheme was unsound. Undersized schemes collide immediately; honest
    Θ(log n) schemes keep all signatures distinct. *)

val cycle_ids : n:int -> a:int -> b:int -> int list
(** The paper's identifier pattern for C(a, b): disjoint across
    different rows and columns, cyclically ordered, closed by the
    {a, b} edge. *)

type family = {
  n : int;
  make : a:Graph.node -> b:Graph.node -> Instance.t;
  is_yes : Instance.t -> bool;
}

val signature :
  radius:int -> Instance.t -> Proof.t -> a:int -> b:int -> ids:int list -> string
(** c(a, b): all auxiliary labels and proof bits within the window. *)

type outcome =
  | Fooled of {
      instance : Instance.t;
      proof : Proof.t;
      quad : (int * int) * (int * int);
      genuinely_no : bool;
    }
  | Resisted of { pairs : int; distinct_signatures : int }
  | Prover_failed of int * int

val attack : ?rows:int -> Scheme.t -> family -> outcome
(** Run the whole construction at k = 2. [rows] bounds |A| = |B| (the
    tests use 3–4; the paper's asymptotic argument takes the full n). *)

(** The general-k construction (the paper fixes an arbitrary constant
    k ≥ 2): a monochromatic 2k-cycle in the signature-coloured K_{n,n}
    lets k compatible n-cycles glue into a kn-cycle. Parameter choice
    matters and the outcome reports it honestly: gluing an odd number
    of odd cycles yields a yes-instance ([genuinely_no = false]). *)
type outcome_k =
  | Fooled_k of {
      instance : Instance.t;
      proof : Proof.t;
      cycle : (int * int) list;
      genuinely_no : bool;
    }
  | Resisted_k of { pairs : int; distinct_signatures : int }
  | Prover_failed_k of int * int

val find_2k_cycle :
  k:int -> ((int * int) * string) list -> (int * int) list option
(** A monochromatic 2k-cycle among the signature-coloured pairs. *)

val glue_many :
  family -> ((int * int) * Proof.t) list -> (int * int) list -> Instance.t * Proof.t
(** Glue the listed cycles (remove {aᵢ,bᵢ}, add {bᵢ₋₁,aᵢ}), inheriting
    labels and proofs per node. *)

val attack_k : ?rows:int -> k:int -> Scheme.t -> family -> outcome_k

val odd_cycles : n:int -> family
(** Odd n-cycles, no labels — for "odd n(G)" and "chromatic > 2"
    (two odd cycles glue into an even one). *)

val leader_cycles : n:int -> family
(** Node [a] marked leader — the glued cycle has two leaders. *)

val matching_cycles : n:int -> family
(** Maximum matchings of odd cycles leaving [a] unmatched — the glued
    solution has two unmatched nodes. *)
