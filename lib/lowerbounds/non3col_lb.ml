(** Section 6.3 — the fooling-set lower bound for non-3-colourability.

    Yes-instances: G_{A,Ā} for every A ⊆ I×I (never 3-colourable,
    since a colouring would encode a pair in A ∩ Ā = ∅). Two different
    sets A ≠ B have A ∩ B̄ ≠ ∅ or Ā ∩ B ≠ ∅, so one of the spliced
    graphs G_{A,B̄}, G_{B,Ā} is 3-colourable — a no-instance. If the
    proofs of the two yes-instances agree on the wire window W, the
    spliced proof (G_A block from one, G'-block from the other, W
    common) is locally indistinguishable from accepted yes-instances
    everywhere, so the verifier accepts a no-instance.

    Since |I×I| = 2^(2k) sets must map to at most 2^(|W|·bits)
    windows, any scheme with |W|·bits < 2^(2k) window capacity …
    formally o(n²/log n) bits per node … collides. Our experiment
    enumerates all A at k = 1 (16 sets) and reports either the forged
    acceptance or the observed window diversity. *)

type outcome =
  | Fooled of {
      a_set : (int * int) list;
      b_set : (int * int) list;
      instance : Instance.t;
      proof : Proof.t;
      genuinely_no : bool;
    }
  | Resisted of { family_size : int; distinct_windows : int }
  | Prover_failed of (int * int) list

let complement ~k a_set =
  List.filter (fun p -> not (List.mem p a_set)) (Gadgets.all_pairs k)

let subsets ~k =
  let pairs = Array.of_list (Gadgets.all_pairs k) in
  let np = Array.length pairs in
  List.init (1 lsl np) (fun mask ->
      Array.to_list pairs
      |> List.filteri (fun i _ -> (mask lsr i) land 1 = 1))

let window_signature proof window =
  String.concat "|" (List.map (fun v -> Bits.to_string (Proof.get proof v)) window)

(* Splice: G-block of the first instance, G'-block of the second, the
   (common) window from the first. All three pair graphs share the
   same uniform identifier layout, so per-node inheritance is exact. *)
let splice pg1_proof pg2_proof (target : Gadgets.pair_graph) =
  let left_ids = List.init target.Gadgets.left.Gadgets.size Fun.id in
  let right_ids =
    List.init target.Gadgets.right.Gadgets.size (fun i ->
        target.Gadgets.left.Gadgets.size + i)
  in
  let take src nodes p =
    List.fold_left (fun p v -> Proof.set p v (Proof.get src v)) p nodes
  in
  Proof.empty
  |> take pg1_proof left_ids
  |> take pg1_proof target.Gadgets.wire_window
  |> take pg2_proof right_ids

let attack ?(k = 1) ?(r = 1) ?(sets = None) (scheme : Scheme.t) =
  let families = match sets with Some s -> s | None -> subsets ~k in
  let exception Fail of (int * int) list in
  try
    let entries =
      List.map
        (fun a_set ->
          let pg = Gadgets.pair_graph ~k ~r a_set (complement ~k a_set) in
          let inst = Instance.of_graph pg.Gadgets.combined in
          match scheme.Scheme.prover inst with
          | None -> raise (Fail a_set)
          | Some proof ->
              if not (Scheme.accepts scheme inst proof) then raise (Fail a_set);
              (a_set, pg, proof, window_signature proof pg.Gadgets.wire_window))
        families
    in
    let by_sig = Hashtbl.create 64 in
    let collision =
      List.find_map
        (fun (a_set, pg, proof, s) ->
          match Hashtbl.find_opt by_sig s with
          | Some (a', _, p') -> Some ((a', p'), (a_set, pg, proof))
          | None ->
              Hashtbl.replace by_sig s (a_set, pg, proof);
              None)
        entries
    in
    match collision with
    | None ->
        Resisted
          {
            family_size = List.length families;
            distinct_windows = Hashtbl.length by_sig;
          }
    | Some ((a_set, p_a), (b_set, _, p_b)) ->
        (* Pick the orientation with a non-empty intersection, so the
           spliced instance is genuinely 3-colourable. *)
        let orient =
          if List.exists (fun p -> List.mem p (complement ~k b_set)) a_set then
            `A_with_coB
          else `B_with_coA
        in
        let first_set, second_cert, p1, p2 =
          match orient with
          | `A_with_coB -> (a_set, complement ~k b_set, p_a, p_b)
          | `B_with_coA -> (b_set, complement ~k a_set, p_b, p_a)
        in
        let target = Gadgets.pair_graph ~k ~r first_set second_cert in
        let proof = splice p1 p2 target in
        let instance = Instance.of_graph target.Gadgets.combined in
        let accepted = Scheme.accepts scheme instance proof in
        let genuinely_no = Coloring.is_k_colourable target.Gadgets.combined 3 in
        if accepted then
          Fooled { a_set; b_set; instance; proof; genuinely_no }
        else
          Resisted
            {
              family_size = List.length families;
              distinct_windows = Hashtbl.length by_sig;
            }
  with Fail a -> Prover_failed a
