(** Handicapped schemes: complete but undersized.

    The lower-bound theorems say that below a certain proof size no
    scheme can be both complete and sound. To demonstrate them
    mechanically we exhibit the natural undersized candidates — each is
    {e complete} (every yes-instance has an accepted proof within the
    budget) and locally plausible, and the attack constructions of
    Sections 5.3 and 6 then forge accepted no-instances, certifying
    their unsoundness. The honest Θ-sized schemes resist the same
    attacks.

    The cyclic counter schemes replace the unbounded distance counters
    of the spanning-tree certificate by counters mod m = 2^bits; the
    claims schemes replace the O(n²)-bit full-graph encoding by local
    O(Δ log n)-bit assertions that neighbours can cross-check but never
    globally ground. *)

let mod_of_bits bits =
  if bits < 2 then invalid_arg "Truncated: need at least 2 bits";
  1 lsl bits

(* --- cyclic position counters on cycles --------------------------- *)

(* Proof layout: origin flag ++ position mod m (fixed width). A node of
   the cycle family carrying flag 1 claims position 0. *)
let encode_pos ~bits ~origin pos =
  let buf = Bits.Writer.create () in
  Bits.Writer.bool buf origin;
  Bits.Writer.int_fixed buf ~width:bits (pos mod mod_of_bits bits);
  Bits.Writer.contents buf

let decode_pos ~bits view u =
  let cur = Bits.Reader.of_bits (View.proof_of view u) in
  let origin = Bits.Reader.bool cur in
  let pos = Bits.Reader.int_fixed cur ~width:bits in
  Bits.Reader.expect_end cur;
  (origin, pos)

let cycle_order g =
  let start = List.hd (Graph.nodes g) in
  let rec walk acc prev v =
    if v = start then List.rev acc
    else
      match Graph.neighbours g v with
      | [ a; b ] -> walk (v :: acc) v (if a = prev then b else a)
      | _ -> invalid_arg "Truncated: not a cycle"
  in
  match Graph.neighbours g start with
  | [ first; _ ] -> start :: walk [] start first
  | _ -> invalid_arg "Truncated: not a cycle"

let is_cycle g =
  Graph.n g >= 3
  && Graph.m g = Graph.n g
  && Traversal.is_connected g
  && Graph.fold_nodes (fun v acc -> acc && Graph.degree g v = 2) g true

let pos_proof ~bits g ~origin =
  let order = cycle_order g in
  (* rotate so the origin is first *)
  let rec rotate = function
    | [] -> []
    | x :: rest as l -> if x = origin then l else rotate (rest @ [ x ])
  in
  let order = rotate order in
  List.mapi (fun i v -> (v, encode_pos ~bits ~origin:(i = 0) i)) order
  |> List.fold_left (fun p (v, b) -> Proof.set p v b) Proof.empty

(* Common local check: one neighbour plays successor (position + 1 mod
   m, or an origin — the cycle closes there), the other predecessor
   (position - 1 mod m; at an origin the predecessor is the closing
   node, whose position [pred_at_origin] constrains). The {e missing}
   check — "there is exactly one origin" — is exactly what costs
   Θ(log n), and its absence is what the gluing attack exploits. *)
let counter_checks ~bits ~pred_at_origin view =
  let m = mod_of_bits bits in
  let v = View.centre view in
  let origin, pos = decode_pos ~bits view v in
  ((not origin) || pos = 0)
  &&
  match View.neighbours view v with
  | [ a; b ] ->
      let succ_ok (o, p) = o || p = (pos + 1) mod m in
      let pred_ok (_, p) =
        if origin then pred_at_origin p else p = (pos + m - 1) mod m
      in
      let la = decode_pos ~bits view a and lb = decode_pos ~bits view b in
      (succ_ok la && pred_ok lb) || (succ_ok lb && pred_ok la)
  | _ -> false

(** Odd number of nodes, on cycles, with [bits] = O(1) instead of
    Θ(log n). [bits] must make m even so that position parity survives
    reduction mod m; the origin then checks that its incoming
    neighbour sits at an even position — correct when the origin is
    unique, fooled when gluing creates two origins. *)
let odd_n_cycle ~bits =
  Scheme.make
    ~name:(Printf.sprintf "odd-n-cycle-mod-%d-bits" bits)
    ~radius:1
    ~size_bound:(fun _ -> bits + 1)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if is_cycle g && Graph.n g mod 2 = 1 then
        Some (pos_proof ~bits g ~origin:(List.hd (Graph.nodes g)))
      else None)
    ~verifier:
      (* Closing position = (n - 1) mod m; even iff n is odd (m even). *)
      (counter_checks ~bits ~pred_at_origin:(fun p -> p mod 2 = 0))

(** Leader election on cycles with O(1) bits: the "leader ⇒ position
    0" direction is checkable, the "position 0 ⇒ leader" direction is
    not (position 0 recurs every m hops), and uniqueness of the leader
    is unprovable in o(log n) bits. *)
let leader_cycle ~bits =
  Scheme.make
    ~name:(Printf.sprintf "leader-cycle-mod-%d-bits" bits)
    ~radius:1
    ~size_bound:(fun _ -> bits + 1)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if not (is_cycle g) then None
      else
        match Instance.marked_exactly_one inst with
        | None -> None
        | Some leader -> Some (pos_proof ~bits g ~origin:leader))
    ~verifier:(fun view ->
      counter_checks ~bits ~pred_at_origin:(fun _ -> true) view
      &&
      let v = View.centre view in
      let origin, _ = decode_pos ~bits view v in
      let marked =
        let l = View.label_of view v in
        Bits.length l >= 1 && Bits.get l 0
      in
      (* A marked leader must be an origin at position 0. Nothing can
         stop several origin-leader pairs far apart — that is the
         Θ(log n) gap. *)
      Bool.equal marked origin)

(** Maximum matching on cycles with O(1) bits: "unmatched ⇒ origin" is
    locally checkable; uniqueness of the unmatched node is not. *)
let max_matching_cycle ~bits =
  Scheme.make
    ~name:(Printf.sprintf "max-matching-cycle-mod-%d-bits" bits)
    ~radius:1
    ~size_bound:(fun _ -> bits + 1)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if not (is_cycle g) then None
      else begin
        let m = Instance.flagged_edges inst in
        if not (Matching.is_matching g m) then None
        else begin
          let covered = Matching.matched_nodes m in
          let unmatched =
            List.filter (fun v -> not (List.mem v covered)) (Graph.nodes g)
          in
          match unmatched with
          | [] -> Some (pos_proof ~bits g ~origin:(List.hd (Graph.nodes g)))
          | [ u ] -> Some (pos_proof ~bits g ~origin:u)
          | _ -> None
        end
      end)
    ~verifier:(fun view ->
      counter_checks ~bits ~pred_at_origin:(fun _ -> true) view
      &&
      let v = View.centre view in
      let origin, _ = decode_pos ~bits view v in
      let matched =
        List.filter
          (fun u ->
            let l = View.edge_label_of view v u in
            Bits.length l >= 1 && Bits.get l 0)
          (View.neighbours view v)
      in
      match matched with
      | [] -> origin
      | [ _ ] -> true
      | _ -> false)

(* --- local claims instead of global encodings ---------------------- *)

(* Claim layout: image id ++ gamma-coded list of the image's neighbour
   ids — a node's assertion about where an automorphism g sends it and
   what g's image neighbourhood looks like. Locally cross-checkable,
   globally groundless: the Section 6.1 attack splices two coherent
   claim systems into an asymmetric graph. *)
let encode_claim ~image ~image_neighbours ~extra =
  let buf = Bits.Writer.create () in
  Bits.Writer.int_gamma buf image;
  Bits.Writer.list buf Bits.Writer.int_gamma image_neighbours;
  Bits.Writer.bits buf extra;
  Bits.Writer.contents buf

(** Symmetric graphs with O(Δ log n) bits per node: each node claims
    its image under a non-trivial automorphism together with the
    image's neighbourhood; neighbours cross-check that their images
    are adjacent. A spanning-tree certificate roots the graph at a
    node whose image differs from itself (non-triviality). *)
let symmetric_claims =
  Scheme.make ~name:"symmetric-claims" ~radius:1
    ~size_bound:(fun n -> 40 * (Bits.int_width (max 2 n) + 2) * 8)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if not (Traversal.is_connected g) then None
      else
        match Automorphism.nontrivial_automorphism g with
        | None -> None
        | Some mapping ->
            let image = Hashtbl.create 64 in
            List.iter (fun (u, w) -> Hashtbl.replace image u w) mapping;
            let moved = List.find (fun (u, w) -> u <> w) mapping in
            let root = fst moved in
            let cert = Hashtbl.create 64 in
            List.iter
              (fun (v, c) -> Hashtbl.replace cert v c)
              (Tree_cert.prove g ~root);
            Some
              (Graph.fold_nodes
                 (fun v p ->
                   let w = Hashtbl.find image v in
                   Proof.set p v
                     (encode_claim ~image:w
                        ~image_neighbours:(Graph.neighbours g w)
                        ~extra:(Tree_cert.encode (Hashtbl.find cert v))))
                 g Proof.empty))
    ~verifier:(fun view ->
      let parse u =
        let cur = Bits.Reader.of_bits (View.proof_of view u) in
        let image = Bits.Reader.int_gamma cur in
        let image_neighbours = Bits.Reader.list cur Bits.Reader.int_gamma in
        let cert = Tree_cert.read cur in
        Bits.Reader.expect_end cur;
        (image, image_neighbours, cert)
      in
      let v = View.centre view in
      let image, image_nbrs, _ = parse v in
      let cert_of u =
        let _, _, c = parse u in
        c
      in
      Tree_cert.check_at view ~cert_of
      (* Claimed image degree matches mine. *)
      && List.length image_nbrs = View.degree_in_view view v
      (* My neighbours' images are exactly my image's neighbours. *)
      && (let claimed =
            List.map
              (fun u ->
                let iu, _, _ = parse u in
                iu)
              (View.neighbours view v)
          in
          List.sort_uniq Int.compare claimed = List.sort Int.compare claimed
          && List.sort Int.compare claimed = List.sort Int.compare image_nbrs)
      (* Non-triviality at the certified root. *)
      && ((not (Tree_cert.is_root (cert_of v))) || image <> v))

(** Fixpoint-free symmetry on trees with O(Δ log n) bits: same claim
    structure; "fixpoint-free" is even locally checkable (every node
    checks image ≠ self), so no tree certificate is needed. Still
    unsound — Section 6.2's splice fools it. *)
let fixpoint_free_claims =
  Scheme.make ~name:"fixpoint-free-claims" ~radius:1
    ~size_bound:(fun n -> 40 * (Bits.int_width (max 2 n) + 2) * 8)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if not (Tree_enum.is_tree g) then None
      else
        match Automorphism.fixpoint_free_automorphism g with
        | None -> None
        | Some mapping ->
            let image = Hashtbl.create 64 in
            List.iter (fun (u, w) -> Hashtbl.replace image u w) mapping;
            Some
              (Graph.fold_nodes
                 (fun v p ->
                   let w = Hashtbl.find image v in
                   Proof.set p v
                     (encode_claim ~image:w
                        ~image_neighbours:(Graph.neighbours g w)
                        ~extra:Bits.empty))
                 g Proof.empty))
    ~verifier:(fun view ->
      let parse u =
        let cur = Bits.Reader.of_bits (View.proof_of view u) in
        let image = Bits.Reader.int_gamma cur in
        let image_neighbours = Bits.Reader.list cur Bits.Reader.int_gamma in
        Bits.Reader.expect_end cur;
        (image, image_neighbours)
      in
      let v = View.centre view in
      let image, image_nbrs = parse v in
      image <> v
      && List.length image_nbrs = View.degree_in_view view v
      && (let claimed = List.map (fun u -> fst (parse u)) (View.neighbours view v) in
          List.sort_uniq Int.compare claimed = List.sort Int.compare claimed
          && List.sort Int.compare claimed = List.sort Int.compare image_nbrs))

(** Ball certificates: every node carries an encoding of its radius-1
    ball plus a shared one-bit verdict. Plausible ("certify your
    neighbourhood, agree on the answer"), o(n²/log n)-sized, complete
    for any property — and fooled by the Section 6.3 fooling set, whose
    two yes-instances agree on every ball along the wires. *)
let ball_claims ~name (predicate : Graph.t -> bool) =
  Scheme.make ~name ~radius:1
    ~size_bound:(fun n -> 80 * Bits.int_width (max 2 n) * 8)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if (not (Traversal.is_connected g)) || Graph.is_empty g || not (predicate g)
      then None
      else
        Some
          (Graph.fold_nodes
             (fun v p ->
               let ball = Graph.induced g (Traversal.ball g v 1) in
               let buf = Bits.Writer.create () in
               Bits.Writer.bool buf true;
               Bits.Writer.bits buf (Graph_code.encode ball);
               Proof.set p v (Bits.Writer.contents buf))
             g Proof.empty))
    ~verifier:(fun view ->
      let v = View.centre view in
      let cur = Bits.Reader.of_bits (View.proof_of view v) in
      let verdict = Bits.Reader.bool cur in
      let rest =
        Bits.sub (View.proof_of view v) 1 (Bits.length (View.proof_of view v) - 1)
      in
      verdict
      && (let claimed = Graph_code.decode rest in
          Graph.equal claimed (View.graph view))
      && List.for_all
           (fun u ->
             let b = View.proof_of view u in
             Bits.length b >= 1 && Bits.get b 0)
           (View.neighbours view v))

(* --- ablation: one-sided pointers for directed reachability -------- *)

(* The tempting O(log Δ) scheme for directed s–t reachability stores
   only a successor pointer (plus a mod-3 hop counter) along a path.
   It is complete — and unsound: a disjoint pointer cycle of length
   divisible by 3 satisfies every local check, so the chain from s may
   feed into a cycle while an unreachable t idles with no successor.
   [Reachability.directed_reach_pointer] fixes this with mutual
   pointers; [one_sided_fooling] constructs the explicit counterexample
   this ablation is about. *)
let directed_reach_one_sided =
  Scheme.make ~name:"st-reach-directed-one-sided" ~radius:2
    ~size_bound:(fun n -> (2 * Bits.int_width (max 2 n)) + 6)
    ~prover:(fun inst ->
      match St.find inst with
      | None -> None
      | Some (s, t) ->
          let g = Instance.graph inst in
          let parent = Hashtbl.create 64 in
          Hashtbl.replace parent s s;
          let q = Queue.create () in
          Queue.push s q;
          while not (Queue.is_empty q) do
            let v = Queue.pop q in
            List.iter
              (fun u ->
                if Instance.arc_exists inst v u && not (Hashtbl.mem parent u)
                then begin
                  Hashtbl.replace parent u v;
                  Queue.push u q
                end)
              (Graph.neighbours g v)
          done;
          if not (Hashtbl.mem parent t) then None
          else begin
            let rec walk acc v =
              if v = s then v :: acc else walk (v :: acc) (Hashtbl.find parent v)
            in
            let path = Array.of_list (walk [] t) in
            let out_rank v target =
              let succs =
                List.filter (Instance.arc_exists inst v) (Graph.neighbours g v)
              in
              let rec rank k = function
                | [] -> invalid_arg "Truncated: successor not an out-neighbour"
                | x :: rest -> if x = target then k else rank (k + 1) rest
              in
              rank 0 succs
            in
            let proof = ref Proof.empty in
            Graph.iter_nodes
              (fun v -> proof := Proof.set !proof v (Bits.one_bit false))
              g;
            Array.iteri
              (fun i v ->
                let buf = Bits.Writer.create () in
                Bits.Writer.bool buf true;
                Bits.Writer.int_fixed buf ~width:2 (i mod 3);
                (if i + 1 < Array.length path then begin
                   Bits.Writer.bool buf true;
                   Bits.Writer.int_gamma buf (out_rank v path.(i + 1))
                 end
                 else Bits.Writer.bool buf false);
                proof := Proof.set !proof v (Bits.Writer.contents buf))
              path;
            Some !proof
          end)
    ~verifier:(fun view ->
      let parse u =
        let cur = Bits.Reader.of_bits (View.proof_of view u) in
        if not (Bits.Reader.bool cur) then None
        else begin
          let hop = Bits.Reader.int_fixed cur ~width:2 in
          let succ =
            if Bits.Reader.bool cur then Some (Bits.Reader.int_gamma cur) else None
          in
          Some (hop, succ)
        end
      in
      let v = View.centre view in
      match parse v with
      | None -> (not (St.is_s view v)) && not (St.is_t view v)
      | Some (hop, succ) -> (
          hop < 3
          && (if St.is_s view v then hop = 0 else true)
          &&
          match succ with
          | None -> St.is_t view v
          | Some rank -> (
              let outs =
                List.filter (fun x -> View.arc_exists view v x) (View.neighbours view v)
              in
              match List.nth_opt outs rank with
              | None -> false
              | Some u -> (
                  match parse u with
                  | Some (hop', _) -> hop' = (hop + 1) mod 3
                  | None -> false))))

(** The counterexample: s feeds a 3-cycle, t sits apart and is not
    reachable — yet the forged proof below is accepted at every node.
    Returns (instance, forged proof). *)
let one_sided_fooling () =
  (* arcs: s=0 -> 1, cycle 1 -> 2 -> 3 -> 1; t=4 with an incoming arc
     from 5 so it is a legitimate node of the digraph. *)
  let d = Digraph.of_arcs [ (0, 1); (1, 2); (2, 3); (3, 1); (5, 4) ] in
  let inst = St.of_digraph d ~s:0 ~t:4 in
  let mk ~hop ~succ =
    let buf = Bits.Writer.create () in
    Bits.Writer.bool buf true;
    Bits.Writer.int_fixed buf ~width:2 hop;
    (match succ with
    | None -> Bits.Writer.bool buf false
    | Some rank ->
        Bits.Writer.bool buf true;
        Bits.Writer.int_gamma buf rank);
    Bits.Writer.contents buf
  in
  let off = Bits.one_bit false in
  let proof =
    Proof.of_list
      [
        (0, mk ~hop:0 ~succ:(Some 0)); (* s -> node 1 *)
        (1, mk ~hop:1 ~succ:(Some 0)); (* 1 -> 2 *)
        (2, mk ~hop:2 ~succ:(Some 0)); (* 2 -> 3 *)
        (3, mk ~hop:0 ~succ:(Some 0)); (* 3 -> 1: hop 0 -> 1 consistent! *)
        (4, mk ~hop:2 ~succ:None);     (* t: on path, no successor *)
        (5, off);
      ]
  in
  (inst, proof)
