type outcome =
  | Fooled of { instance : Instance.t; proof : Proof.t }
  | Prover_failed
  | Unexpectedly_rejected of Graph.node list

let attack (scheme : Scheme.t) ~component ~other =
  let i1 = component () in
  let i2 = other () in
  match (scheme.Scheme.prover i1, scheme.Scheme.prover i2) with
  | Some p1, Some p2
    when Scheme.accepts scheme i1 p1 && Scheme.accepts scheme i2 p2 -> (
      let instance = Instance.union_disjoint i1 i2 in
      let proof = Proof.union_disjoint p1 p2 in
      match Scheme.decide scheme instance proof with
      | Scheme.Accept -> Fooled { instance; proof }
      | Scheme.Reject vs -> Unexpectedly_rejected vs)
  | _ -> Prover_failed

let connectivity_has_no_scheme scheme =
  let st = Random.State.make [| 0x5EED |] in
  let component () =
    Instance.of_graph (Random_graphs.connected_gnp st 9 0.3)
  in
  let other () =
    Instance.of_graph
      (Canonical.shifted (Random_graphs.connected_gnp st 8 0.35) 100)
  in
  match attack scheme ~component ~other with
  | Fooled { instance; _ } ->
      (* the union must genuinely be disconnected *)
      not (Traversal.is_connected (Instance.graph instance))
  | Prover_failed | Unexpectedly_rejected _ -> false
