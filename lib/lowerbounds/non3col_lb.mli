(** Section 6.3 — the fooling set for non-3-colourability.

    Yes-instances G_{A,Ā} for A ⊆ I×I are proved; proofs are compared
    on the wire window W (whose identifiers are uniform across A). Two
    sets with colliding windows yield a spliced proof for the
    3-colourable no-instance G_{A,B̄} (or G_{B,Ā} — whichever
    intersection is non-empty), accepted everywhere. Since 2^(2^{2k})
    sets must share 2^(|W|·bits) windows, any scheme with
    o(n²/log n) bits per node collides. *)

type outcome =
  | Fooled of {
      a_set : (int * int) list;
      b_set : (int * int) list;
      instance : Instance.t;
      proof : Proof.t;
      genuinely_no : bool;
    }
  | Resisted of { family_size : int; distinct_windows : int }
  | Prover_failed of (int * int) list

val complement : k:int -> (int * int) list -> (int * int) list
val subsets : k:int -> (int * int) list list
val window_signature : Proof.t -> Graph.node list -> string

val attack :
  ?k:int -> ?r:int -> ?sets:(int * int) list list option -> Scheme.t -> outcome
(** Defaults: k = 1 (16 subsets), r = 1; [sets] restricts the family
    (tests use 3–4 sets to keep the solver work small). *)
