(** Section 6.3 — explicit graphs G_A for A ⊆ I × I, I = {0..2^k - 1},
    with the paper's properties:

    (i)   n(G_A) = Θ(2^k) (uniform over A — only edges vary with A);
    (ii)  distinguished nodes T, F, N, x₀..x_{k-1}, y₀..y_{k-1};
    (iii) in any 3-colouring, T, F, N get three distinct colours;
    (iv)  each xᵢ, yᵢ is coloured "true" or "false";
    (v)   valid 3-colourings encode exactly the pairs (x, y) ∈ A.

    Construction: a palette triangle; variable nodes forced to T/F by
    an edge to N; negated copies via NOT gadgets; for {e every} pair
    p = (a, b) a clause OR-chain computing "x ≠ a ∨ y ≠ b", whose
    output is forced true (an extra edge to F) exactly when p ∉ A.
    All clauses true ⟺ (x, y) avoids the complement of A ⟺ (x, y) ∈ A.

    The OR gadget on inputs u, v (both T/F-forced) is the classic
    3-colouring gate: a triangle {i₁, i₂, o} with u–i₁, v–i₂ and o–N.
    It forces o = F when u = v = F, forces u = T or v = T when o = T,
    and is satisfiable in all intended cases.

    [pair_graph] joins G_A and an isomorphic shifted copy G'_B with the
    2k+1 triangle-chain wires of the paper, identifying wire endpoints
    with N/T/xᵢ/yᵢ on both sides; wire layers propagate colours, so a
    3-colouring of G_{A,B} exists iff A ∩ B ≠ ∅. *)

type gadget = {
  graph : Graph.t;
  t_node : Graph.node;
  f_node : Graph.node;
  n_node : Graph.node;
  xs : Graph.node array;
  ys : Graph.node array;
  k : int;
  size : int; (* nodes allocated, uniform over A *)
}

let all_pairs k =
  let m = 1 lsl k in
  List.concat_map (fun a -> List.init m (fun b -> (a, b))) (List.init m Fun.id)

(* Deterministic builder: ids are allocated by a counter whose
   trajectory does not depend on A. *)
let build ?(base = 0) ~k (a_set : (int * int) list) =
  let next = ref base in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let g = ref Graph.empty in
  let node () =
    let v = fresh () in
    g := Graph.add_node !g v;
    v
  in
  let edge u v = g := Graph.add_edge !g u v in
  let t_node = node () and f_node = node () and n_node = node () in
  edge t_node f_node;
  edge f_node n_node;
  edge t_node n_node;
  let var () =
    let v = node () in
    edge v n_node;
    v
  in
  let xs = Array.init k (fun _ -> var ()) in
  let ys = Array.init k (fun _ -> var ()) in
  let not_gate u =
    let w = node () in
    edge w u;
    edge w n_node;
    w
  in
  let not_xs = Array.map not_gate xs in
  let not_ys = Array.map not_gate ys in
  let or_gate u v =
    let i1 = node () and i2 = node () and o = node () in
    edge i1 i2;
    edge i1 o;
    edge i2 o;
    edge u i1;
    edge v i2;
    edge o n_node;
    o
  in
  (* Clause for pair (a, b): OR over the literals "xᵢ ≠ aᵢ", "yᵢ ≠ bᵢ".
     The literal node is the variable itself when the constant bit is
     0 (xᵢ = T ⟹ xᵢ ≠ 0), and its negation when the bit is 1. *)
  let literal vars not_vars value i =
    if (value lsr i) land 1 = 1 then not_vars.(i) else vars.(i)
  in
  List.iter
    (fun (a, b) ->
      let literals =
        List.init k (literal xs not_xs a) @ List.init k (literal ys not_ys b)
      in
      let out =
        match literals with
        | [] -> invalid_arg "Gadgets.build: k must be >= 1"
        | [ l ] ->
            (* Degenerate single-literal clause: buffer through an OR
               with itself to keep the uniform layout. *)
            or_gate l l
        | l1 :: l2 :: rest -> List.fold_left or_gate (or_gate l1 l2) rest
      in
      (* Force the clause true exactly when the pair is forbidden. *)
      if not (List.mem (a, b) a_set) then edge out f_node)
    (all_pairs k);
  { graph = !g; t_node; f_node; n_node; xs; ys; k; size = !next - base }

(* A wire between endpoint triples (n₁, v₁) and (n₂, v₂): layers
   1..3r of triangles; layer 1 contains n₁ and v₁ (plus one fresh
   node), layer 3r contains n₂ and v₂; consecutive layers are joined
   by all j ≠ j' edges, which forces colours to propagate along each
   of the three tracks. *)
let wire g ~fresh ~layers (n1, v1) (n2, v2) =
  let g = ref g in
  let edge u v = g := Graph.add_edge !g u v in
  let node () =
    let v = fresh () in
    g := Graph.add_node !g v;
    v
  in
  let layer_of = function
    | 0 -> [| n1; v1; node () |]
    | i when i = layers - 1 -> [| n2; v2; node () |]
    | _ -> [| node (); node (); node () |]
  in
  let all = Array.init layers layer_of in
  Array.iter
    (fun layer ->
      edge layer.(0) layer.(1);
      edge layer.(1) layer.(2);
      edge layer.(0) layer.(2))
    all;
  for i = 0 to layers - 2 do
    for j = 0 to 2 do
      for j' = 0 to 2 do
        if j <> j' then edge all.(i).(j) all.(i + 1).(j')
      done
    done
  done;
  !g

type pair_graph = {
  combined : Graph.t;
  left : gadget;
  right : gadget;
  wire_window : Graph.node list;
      (** The internal wire nodes W — identical identifiers for every
          (A, B), the fooling-set window. *)
}

let pair_graph ~k ~r a_set b_set =
  if r < 1 then invalid_arg "Gadgets.pair_graph: r >= 1";
  let left = build ~base:0 ~k a_set in
  let right = build ~base:left.size ~k b_set in
  let layers = 3 * r in
  let wire_base = 2 * left.size in
  let next = ref wire_base in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let g = Graph.union_disjoint left.graph right.graph in
  let endpoints =
    ((left.t_node, right.t_node)
    :: List.init k (fun i -> (left.xs.(i), right.xs.(i)))
    @ List.init k (fun i -> (left.ys.(i), right.ys.(i))))
  in
  let g =
    List.fold_left
      (fun g (v1, v2) ->
        wire g ~fresh ~layers (left.n_node, v1) (right.n_node, v2))
      g endpoints
  in
  let wire_window = List.init (!next - wire_base) (fun i -> wire_base + i) in
  { combined = g; left; right; wire_window }

(** A constructive 3-colouring of G_{A,B} encoding the pair (x, y) —
    used for completeness checks without a search, and to certify
    3-colourability of the glued fooling instance. Returns [None] if
    (x, y) ∉ A ∩ B (the colouring would be invalid). *)
let encode_colouring pg (x, y) =
  (* Colour convention: T = 0, F = 1, N = 2; a variable bit 1 means
     colour T. The palette and variables are pinned, the solver fills
     in gate internals and wires — which are forced anyway. *)
  let bit_colour value i = if (value lsr i) land 1 = 1 then 0 else 1 in
  let pre =
    [ (pg.left.t_node, 0); (pg.left.f_node, 1); (pg.left.n_node, 2) ]
    @ Array.to_list (Array.mapi (fun i v -> (v, bit_colour x i)) pg.left.xs)
    @ Array.to_list (Array.mapi (fun i v -> (v, bit_colour y i)) pg.left.ys)
  in
  Coloring.k_colouring_with pg.combined 3 ~pre
