(** Section 6.3's gadget graphs, built explicitly (the paper defers the
    construction to its extended version; ours satisfies the properties
    (i)–(v) it relies on, and the tests check them).

    [build ~k a_set] produces G_A for A ⊆ I×I, I = {0..2^k-1}: a
    palette triangle (T, F, N), variable nodes x₀..x_{k-1}, y₀..y_{k-1}
    forced to T/F, NOT gates for the negated literals, and — for
    {e every} pair p — a clause OR-chain computing "(x,y) ≠ p", whose
    output is forced true exactly when p ∉ A. Only edges depend on A;
    the node layout is uniform, so instances for different A share
    identifiers (which the fooling-set splice requires).

    [pair_graph] joins G_A and a shifted copy G'_B with the paper's
    2k+1 triangle-chain wires (3r layers each) identifying N/T/xᵢ/yᵢ
    across; colours propagate along wires, so G_{A,B} is 3-colourable
    iff A ∩ B ≠ ∅. *)

type gadget = {
  graph : Graph.t;
  t_node : Graph.node;
  f_node : Graph.node;
  n_node : Graph.node;
  xs : Graph.node array;
  ys : Graph.node array;
  k : int;
  size : int;
}

val all_pairs : int -> (int * int) list
(** I × I for I = {0..2^k - 1}. *)

val build : ?base:int -> k:int -> (int * int) list -> gadget
(** Identifiers are allocated from [base] by a counter whose course is
    independent of the pair set. *)

type pair_graph = {
  combined : Graph.t;
  left : gadget;
  right : gadget;
  wire_window : Graph.node list;
}

val pair_graph : k:int -> r:int -> (int * int) list -> (int * int) list -> pair_graph

val encode_colouring : pair_graph -> int * int -> Coloring.colouring option
(** A proper 3-colouring of the pair graph that encodes the given
    (x, y) on the variable nodes — exists iff (x, y) ∈ A ∩ B. *)
