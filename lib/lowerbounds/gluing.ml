(** Section 5.3 — gluing cycles together (Figure 1).

    Given a proof labelling scheme for a cycle property/problem, take
    the yes-instances C(a, b) for a ∈ A = {1..n}, b ∈ B = {n+1..2n};
    colour the edge {a, b} of K_{n,n} with the "signature" c(a, b) —
    all auxiliary information and proof bits within distance 2r+1 of a
    or b; find a monochromatic 4-cycle (a₁, b₁, a₂, b₂) (the k = 2 case
    of Bondy–Simonovits); glue C(a₁,b₁) and C(a₂,b₂) into a 2n-cycle by
    removing the edges {aᵢ, bᵢ} and adding {b₁, a₂} and {b₂, a₁},
    inheriting labels and proofs. Every node's radius-r view in the
    glued cycle equals its view in one of the accepted yes-instances,
    so the verifier accepts — if the glued instance is a no-instance,
    the scheme is unsound.

    For honest Θ(log n) schemes the signatures contain identifiers and
    never collide (the attack reports the diversity); for the
    undersized schemes in [Truncated] they collide immediately. *)

(* Node identifiers of C(a, b), in cyclic order, following the paper:
   a, a+4n, a+6n, …, a+2n·n1, b+2n·n2, …, b+6n, b+4n, b with
   n1 = ⌊n/2⌋ and n2 = ⌈n/2⌉; the edge {a, b} closes the cycle. *)
let cycle_ids ~n ~a ~b =
  let n1 = n / 2 and n2 = (n + 1) / 2 in
  let a_side = a :: List.init (n1 - 1) (fun i -> a + (2 * n * (i + 2))) in
  let b_side = b :: List.init (n2 - 1) (fun i -> b + (2 * n * (i + 2))) in
  a_side @ List.rev b_side

type family = {
  n : int;  (** Cycle length; must be ≥ 6 for disjoint windows. *)
  make : a:Graph.node -> b:Graph.node -> Instance.t;
      (** The labelled yes-instance on the cycle [cycle_ids ~n ~a ~b]. *)
  is_yes : Instance.t -> bool;  (** Ground truth, for reporting. *)
}

(** The signature c(a, b): all labels and proof bits within distance
    2r+1 of a or b along the cycle, in a fixed cyclic order. *)
let signature ~radius inst proof ~a ~b ~ids =
  let arr = Array.of_list ids in
  let n = Array.length arr in
  let window = (2 * radius) + 1 in
  let around centre =
    let idx = ref (-1) in
    Array.iteri (fun i v -> if v = centre then idx := i) arr;
    List.init ((2 * window) + 1) (fun off -> arr.((!idx + off - window + n) mod n))
  in
  let nodes = around a @ around b in
  String.concat "|"
    (List.map
       (fun v ->
         Printf.sprintf "%s;%s"
           (Bits.to_string (Instance.node_label inst v))
           (Bits.to_string (Proof.get proof v)))
       nodes)

type outcome =
  | Fooled of {
      instance : Instance.t;
      proof : Proof.t;
      quad : (int * int) * (int * int);
      genuinely_no : bool;
    }
  | Resisted of { pairs : int; distinct_signatures : int }
  | Prover_failed of int * int

(* Find a monochromatic rectangle: two rows a₁ < a₂ and two columns
   b₁ < b₂ with equal signatures on all four pairs. *)
let find_rectangle signatures =
  (* signatures : ((a, b) * string) list *)
  let by_sig = Hashtbl.create 64 in
  List.iter (fun ((a, b), s) -> Hashtbl.add by_sig s (a, b)) signatures;
  let colours = Hashtbl.fold (fun s _ acc -> s :: acc) by_sig [] |> List.sort_uniq compare in
  let exception Found of (int * int) * (int * int) in
  try
    List.iter
      (fun s ->
        let pairs = Hashtbl.find_all by_sig s in
        (* Group columns by row. *)
        let rows = Hashtbl.create 16 in
        List.iter (fun (a, b) -> Hashtbl.add rows a b) pairs;
        let row_list =
          Hashtbl.fold (fun a _ acc -> a :: acc) rows [] |> List.sort_uniq compare
        in
        let cols a = List.sort_uniq compare (Hashtbl.find_all rows a) in
        let rec scan = function
          | [] -> ()
          | a1 :: rest ->
              let c1 = cols a1 in
              List.iter
                (fun a2 ->
                  let shared = List.filter (fun b -> List.mem b c1) (cols a2) in
                  match shared with
                  | b1 :: b2 :: _ -> raise (Found ((a1, b1), (a2, b2)))
                  | _ -> ())
                rest;
              scan rest
        in
        scan row_list)
      colours;
    None
  with Found (p, q) -> Some (p, q)

(** Glue C(a₁,b₁) and C(a₂,b₂): remove {aᵢ,bᵢ}, add {b₁,a₂} and
    {b₂,a₁}; labels and proofs are inherited verbatim. *)
let glue family proofs ((a1, b1), (a2, b2)) =
  let i1 = family.make ~a:a1 ~b:b1 in
  let i2 = family.make ~a:a2 ~b:b2 in
  let inst = Instance.union_disjoint i1 i2 in
  let g = Instance.graph inst in
  let g = Graph.remove_edge g a1 b1 in
  let g = Graph.remove_edge g a2 b2 in
  let g = Graph.add_edge g b1 a2 in
  let g = Graph.add_edge g b2 a1 in
  (* Instance surgery: rebuild with the new graph, same labels. *)
  let rebuilt =
    Graph.fold_nodes
      (fun v acc ->
        let l = Instance.node_label inst v in
        if Bits.length l > 0 then Instance.with_node_label acc v l else acc)
      g
      (Instance.with_globals (Instance.of_graph g) (Instance.globals inst))
  in
  (* Edge labels: inherited on surviving edges; the two fresh seam
     edges take the label of the edge they replace ({aᵢ,bᵢ}), matching
     the paper's per-node auxiliary-information inheritance. *)
  let rebuilt =
    Graph.fold_edges
      (fun u v acc ->
        let l =
          if (u, v) = (min b1 a2, max b1 a2) then Instance.edge_label i1 a1 b1
          else if (u, v) = (min b2 a1, max b2 a1) then Instance.edge_label i2 a2 b2
          else Instance.edge_label inst u v
        in
        if Bits.length l > 0 then Instance.with_edge_label acc u v l else acc)
      g rebuilt
  in
  let proof =
    Proof.union_disjoint (List.assoc (a1, b1) proofs) (List.assoc (a2, b2) proofs)
  in
  (rebuilt, proof)

(* General k: a monochromatic 2k-cycle a₁-b₁-a₂-b₂-…-a_k-b_k needs all
   pairs (aᵢ, bᵢ) and (aᵢ₊₁, bᵢ) in the same colour class (indices mod
   k). Backtracking over alternating sequences; class sizes are tiny at
   experiment scale. *)
let find_2k_cycle ~k signatures =
  if k < 2 then invalid_arg "Gluing.find_2k_cycle: k >= 2";
  let by_sig = Hashtbl.create 64 in
  List.iter (fun ((a, b), s) -> Hashtbl.add by_sig s (a, b)) signatures;
  let colours =
    Hashtbl.fold (fun s _ acc -> s :: acc) by_sig [] |> List.sort_uniq compare
  in
  let exception Found of (int * int) list in
  try
    List.iter
      (fun s ->
        let pairs = Hashtbl.find_all by_sig s in
        let mem a b = List.mem (a, b) pairs in
        let as_ = List.sort_uniq compare (List.map fst pairs) in
        let bs = List.sort_uniq compare (List.map snd pairs) in
        (* build the alternating sequence a₁ b₁ a₂ b₂ …; close at the
           end with (a₁, b_k) ∈ class *)
        let rec extend seq i =
          (* seq = [(a_i, b_i); …; (a_1, b_1)] already chosen *)
          if i = k then begin
            match (List.rev seq, seq) with
            | (a1, _) :: _, (_, bk) :: _ when mem a1 bk -> raise (Found (List.rev seq))
            | _ -> ()
          end
          else
            List.iter
              (fun a ->
                if not (List.exists (fun (a', _) -> a' = a) seq) then
                  match seq with
                  | (_, b_prev) :: _ when not (mem a b_prev) -> ()
                  | _ ->
                      List.iter
                        (fun b ->
                          if
                            mem a b
                            && not (List.exists (fun (_, b') -> b' = b) seq)
                          then extend ((a, b) :: seq) (i + 1))
                        bs)
              as_
        in
        extend [] 0)
      colours;
    None
  with Found quad -> Some quad

(** k-fold gluing (the paper's general construction): remove every
    {aᵢ, bᵢ}, add {bᵢ₋₁, aᵢ} with b₀ = b_k; labels, edge labels and
    proofs inherited per node. *)
let glue_many family proofs quads =
  let instances = List.map (fun (a, b) -> ((a, b), family.make ~a ~b)) quads in
  let inst =
    List.fold_left
      (fun acc (_, i) -> Instance.union_disjoint acc i)
      (snd (List.hd instances))
      (List.tl instances)
  in
  let g = Instance.graph inst in
  let g = List.fold_left (fun g (a, b) -> Graph.remove_edge g a b) g quads in
  let arr = Array.of_list quads in
  let kk = Array.length arr in
  let seams =
    List.init kk (fun i ->
        let _, b_prev = arr.((i + kk - 1) mod kk) in
        let a_i, _ = arr.(i) in
        (b_prev, a_i, arr.((i + kk - 1) mod kk)))
  in
  let g = List.fold_left (fun g (u, v, _) -> Graph.add_edge g u v) g seams in
  let rebuilt =
    Graph.fold_nodes
      (fun v acc ->
        let l = Instance.node_label inst v in
        if Bits.length l > 0 then Instance.with_node_label acc v l else acc)
      g
      (Instance.with_globals (Instance.of_graph g) (Instance.globals inst))
  in
  let seam_label u v =
    List.find_map
      (fun (su, sv, (qa, qb)) ->
        if (min su sv, max su sv) = (min u v, max u v) then
          Some (Instance.edge_label (List.assoc (qa, qb) instances) qa qb)
        else None)
      seams
  in
  let rebuilt =
    Graph.fold_edges
      (fun u v acc ->
        let l =
          match seam_label u v with
          | Some l -> l
          | None -> Instance.edge_label inst u v
        in
        if Bits.length l > 0 then Instance.with_edge_label acc u v l else acc)
      g rebuilt
  in
  let proof =
    List.fold_left
      (fun acc (q, _) -> Proof.union_disjoint acc (List.assoc q proofs))
      Proof.empty instances
  in
  (rebuilt, proof)

type outcome_k =
  | Fooled_k of {
      instance : Instance.t;
      proof : Proof.t;
      cycle : (int * int) list;
      genuinely_no : bool;
    }
  | Resisted_k of { pairs : int; distinct_signatures : int }
  | Prover_failed_k of int * int

(** The general-k attack: glue [k] compatible n-cycles into a kn-cycle.
    For odd n and even k the glued cycle flips the parity; for leader
    election any k ≥ 2 produces k leaders. With odd k and the odd-n
    property the glued instance is still a yes-instance — the attack
    reports [genuinely_no = false], which is not a soundness
    violation: choosing the parameters is part of the argument. *)
let attack_k ?rows ~k (scheme : Scheme.t) family =
  let n = family.n in
  let rows = Option.value ~default:(max (2 * k) 4) rows in
  let rows = min rows n in
  let as_ = List.init rows (fun i -> i + 1) in
  let bs = List.init rows (fun i -> n + i + 1) in
  let exception Fail of int * int in
  try
    let proofs = ref [] in
    let signatures = ref [] in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            let inst = family.make ~a ~b in
            match scheme.Scheme.prover inst with
            | None -> raise (Fail (a, b))
            | Some proof ->
                if not (Scheme.accepts scheme inst proof) then raise (Fail (a, b));
                proofs := ((a, b), proof) :: !proofs;
                let ids = cycle_ids ~n ~a ~b in
                signatures :=
                  ((a, b), signature ~radius:scheme.Scheme.radius inst proof ~a ~b ~ids)
                  :: !signatures)
          bs)
      as_;
    match find_2k_cycle ~k !signatures with
    | None ->
        Resisted_k
          {
            pairs = List.length !signatures;
            distinct_signatures =
              List.length (List.sort_uniq compare (List.map snd !signatures));
          }
    | Some cycle ->
        let instance, proof = glue_many family !proofs cycle in
        let accepted = Scheme.accepts scheme instance proof in
        if accepted then
          Fooled_k
            { instance; proof; cycle; genuinely_no = not (family.is_yes instance) }
        else
          Resisted_k
            {
              pairs = List.length !signatures;
              distinct_signatures =
                List.length (List.sort_uniq compare (List.map snd !signatures));
            }
  with Fail (a, b) -> Prover_failed_k (a, b)

(** Run the whole attack. [rows] bounds |A| = |B| (default: the full
    {1..n} of the paper — quadratic in instance count, so tests trim
    it). *)
let attack ?rows (scheme : Scheme.t) family =
  let n = family.n in
  let rows = Option.value ~default:n rows in
  let as_ = List.init rows (fun i -> i + 1) in
  let bs = List.init rows (fun i -> n + i + 1) in
  let exception Fail of int * int in
  try
    let proofs = ref [] in
    let signatures = ref [] in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            let inst = family.make ~a ~b in
            match scheme.Scheme.prover inst with
            | None -> raise (Fail (a, b))
            | Some proof ->
                if not (Scheme.accepts scheme inst proof) then raise (Fail (a, b));
                proofs := ((a, b), proof) :: !proofs;
                let ids = cycle_ids ~n ~a ~b in
                signatures :=
                  ((a, b), signature ~radius:scheme.Scheme.radius inst proof ~a ~b ~ids)
                  :: !signatures)
          bs)
      as_;
    match find_rectangle !signatures with
    | None ->
        Resisted
          {
            pairs = List.length !signatures;
            distinct_signatures =
              List.length (List.sort_uniq compare (List.map snd !signatures));
          }
    | Some quad ->
        let instance, proof = glue family !proofs quad in
        let accepted = Scheme.accepts scheme instance proof in
        let genuinely_no = not (family.is_yes instance) in
        if accepted then Fooled { instance; proof; quad; genuinely_no }
        else
          (* A collision that does not fool the verifier (possible when
             signatures collide for deeper reasons); report as
             resistance. *)
          Resisted
            {
              pairs = List.length !signatures;
              distinct_signatures =
                List.length (List.sort_uniq compare (List.map snd !signatures));
            }
  with Fail (a, b) -> Prover_failed (a, b)

(* ----- ready-made families ----------------------------------------- *)

(** Odd cycles, no auxiliary labels (lower bounds for "odd n(G)" and
    "chromatic number > 2" with k = 2: two odd cycles glue into an even
    one). *)
let odd_cycles ~n =
  if n mod 2 = 0 || n < 7 then invalid_arg "Gluing.odd_cycles: need odd n >= 7";
  {
    n;
    make =
      (fun ~a ~b -> Instance.of_graph (Builders.cycle_of_ids (cycle_ids ~n ~a ~b)));
    is_yes =
      (fun inst ->
        let g = Instance.graph inst in
        Traversal.is_connected g && Graph.n g mod 2 = 1);
  }

(** Leader election on cycles: the node [a] is marked leader. *)
let leader_cycles ~n =
  if n < 7 then invalid_arg "Gluing.leader_cycles: need n >= 7";
  {
    n;
    make =
      (fun ~a ~b ->
        let ids = cycle_ids ~n ~a ~b in
        let inst = Instance.of_graph (Builders.cycle_of_ids ids) in
        Instance.with_node_labels inst
          (List.map (fun v -> (v, Bits.one_bit (v = a))) ids));
    is_yes =
      (fun inst ->
        Traversal.is_connected (Instance.graph inst)
        && Instance.marked_exactly_one inst <> None);
  }

(** Maximum matching on odd cycles: the matching alternates around the
    cycle leaving exactly node [a] unmatched; the closing edge {a, b}
    is unmatched, so gluing preserves edge labels and yields a
    2n-cycle with two unmatched nodes — not maximum. *)
let matching_cycles ~n =
  if n mod 2 = 0 || n < 7 then invalid_arg "Gluing.matching_cycles: need odd n >= 7";
  {
    n;
    make =
      (fun ~a ~b ->
        let ids = cycle_ids ~n ~a ~b in
        let g = Builders.cycle_of_ids ids in
        (* Pair consecutive nodes starting after [a]: a unmatched. *)
        let arr = Array.of_list ids in
        let rec pairs acc i =
          if i + 1 >= n then acc
          else pairs ((min arr.(i) arr.(i + 1), max arr.(i) arr.(i + 1)) :: acc) (i + 2)
        in
        Instance.flag_edges (Instance.of_graph g) (pairs [] 1));
    is_yes =
      (fun inst ->
        Matching.is_maximum_on_cycle (Instance.graph inst)
          (Instance.flagged_edges inst));
  }
