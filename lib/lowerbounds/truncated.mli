(** Handicapped schemes: {e complete but undersized} — the natural
    candidates below each lower-bound threshold, which the attack
    constructions then prove unsound by forging accepted no-instances.

    Cyclic-counter schemes replace unbounded distance counters by
    counters mod 2^bits (the missing "unique origin" check is exactly
    what costs Θ(log n)); claims schemes replace global encodings by
    locally cross-checkable but globally groundless assertions. *)

val mod_of_bits : int -> int
(** [2^bits]; raises below 2 bits. *)

val odd_n_cycle : bits:int -> Scheme.t
(** Odd n(G) on cycles with O(1) bits (even modulus preserves parity);
    complete, and fooled by gluing two odd cycles. *)

val leader_cycle : bits:int -> Scheme.t
(** Leader election on cycles with O(1) bits; "leader ⟹ origin" is
    checkable, uniqueness is not. *)

val max_matching_cycle : bits:int -> Scheme.t
(** Maximum matching on cycles with O(1) bits; "unmatched ⟹ origin". *)

val symmetric_claims : Scheme.t
(** Symmetric graphs with O(Δ log n) bits: each node claims its image
    under an automorphism plus the image's neighbourhood; neighbours
    cross-check. Fooled by the Section 6.1 splice. *)

val fixpoint_free_claims : Scheme.t
(** Same idea on trees (fixpoint-freeness is even locally checkable);
    fooled by the Section 6.2 splice. *)

val ball_claims : name:string -> (Graph.t -> bool) -> Scheme.t
(** "Certify your radius-1 ball and agree on a one-bit verdict" —
    o(n²/log n) bits, complete for any property, fooled by the
    Section 6.3 wire-window fooling set. *)

val directed_reach_one_sided : Scheme.t
(** Ablation for {!Reachability.directed_reach_pointer}: the same
    O(log Δ) pointer scheme {e without} the mutual predecessor check.
    Complete — and fooled by disjoint pointer cycles. *)

val one_sided_fooling : unit -> Instance.t * Proof.t
(** A concrete unreachable instance plus a forged proof that
    {!directed_reach_one_sided} accepts at every node (and that the
    mutual-pointer scheme rejects). *)
