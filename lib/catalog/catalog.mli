(** A machine-readable catalogue of every scheme in Table 1: the
    scheme, the paper's claimed size class, and sized random generators
    of yes- and no-instances. The metatest sweeps the whole catalogue
    (completeness on yes, prover refusal plus randomised soundness on
    no), and downstream tools get one place to enumerate the
    repertoire. *)

type entry = {
  id : string;  (** Table row, e.g. "T1a-7". *)
  scheme : Scheme.t;
  paper_class : string;
  yes : Random.State.t -> int -> Instance.t option;
      (** A yes-instance of roughly the given size, when the generator
          can build one at that size. *)
  no : Random.State.t -> int -> Instance.t option;
      (** A no-instance — for problems, usually a broken solution. *)
}

val all : entry list
(** Every row of Table 1(a) and (b) that has an executable scheme. *)

val find : string -> entry option
(** Look up by table id. *)
