type entry = {
  id : string;
  scheme : Scheme.t;
  paper_class : string;
  yes : Random.State.t -> int -> Instance.t option;
  no : Random.State.t -> int -> Instance.t option;
}

let of_g g = Instance.of_graph g
let even n = if n mod 2 = 0 then max 4 n else n + 1
let odd n = if n mod 2 = 1 then max 5 n else n + 1
let none2 _ _ = None

(* Disjoint union of two cycles, for disconnection-style no-instances. *)
let two_cycles n =
  let half = max 3 (n / 2) in
  Graph.union_disjoint (Builders.cycle half)
    (Canonical.shifted (Builders.cycle half) (2 * half))

let all =
  [
    {
      id = "T1a-1";
      scheme = Eulerian.scheme;
      paper_class = "0";
      yes = (fun _ n -> Some (of_g (Builders.cycle (max 3 n))));
      no = (fun _ n -> Some (of_g (Builders.path (max 2 n))));
    };
    {
      id = "T1a-2";
      scheme = Line_graph_scheme.scheme;
      paper_class = "0";
      yes =
        (fun st n ->
          Some (of_g (Line_graph.of_root_graph (Random_graphs.tree st (max 2 (n / 2))))));
      no = (fun _ n -> Some (of_g (Builders.star (max 3 n))));
    };
    {
      id = "T1a-3";
      scheme = Reachability.undirected_reach;
      paper_class = "Θ(1)";
      yes =
        (fun st n ->
          let g = Random_graphs.connected_gnp st (max 4 n) 0.3 in
          Some (St.of_graph g ~s:(List.hd (Graph.nodes g)) ~t:(Graph.max_id g)));
      no =
        (fun _ n ->
          let g = two_cycles (max 6 n) in
          Some (St.of_graph g ~s:0 ~t:(Graph.max_id g)));
    };
    {
      id = "T1a-4";
      scheme = Reachability.undirected_unreach;
      paper_class = "Θ(1)";
      yes =
        (fun _ n ->
          let g = two_cycles (max 6 n) in
          Some (St.of_graph g ~s:0 ~t:(Graph.max_id g)));
      no =
        (fun st n ->
          let g = Random_graphs.connected_gnp st (max 4 n) 0.3 in
          Some (St.of_graph g ~s:(List.hd (Graph.nodes g)) ~t:(Graph.max_id g)));
    };
    {
      id = "T1a-7";
      scheme = Bipartite_scheme.scheme;
      paper_class = "Θ(1)";
      yes = (fun _ n -> Some (of_g (Builders.cycle (even n))));
      no = (fun _ n -> Some (of_g (Builders.cycle (odd n))));
    };
    {
      id = "T1a-8";
      scheme = Counting.even_cycle;
      paper_class = "Θ(1)";
      yes = (fun _ n -> Some (of_g (Builders.cycle (even n))));
      no = (fun _ n -> Some (of_g (Builders.cycle (odd n))));
    };
    {
      id = "T1a-10";
      scheme = Chromatic.scheme;
      paper_class = "O(log k)";
      yes = (fun _ n -> let k = max 2 (n / 4) in Some (Chromatic.instance_with_k (Builders.complete k) k));
      no =
        (fun _ n ->
          let k = max 2 (n / 4) in
          Some (Chromatic.instance_with_k (Builders.complete (k + 1)) k));
    };
    {
      id = "T1a-11";
      scheme = Colcp0.non_eulerian;
      paper_class = "O(log n)";
      yes = (fun _ n -> Some (of_g (Builders.star (max 3 n))));
      no = (fun _ n -> Some (of_g (Builders.cycle (max 3 n))));
    };
    {
      id = "T1a-13";
      scheme = Counting.odd_n;
      paper_class = "Θ(log n)";
      yes = (fun st n -> Some (of_g (Random_graphs.connected_gnp st (odd n) 0.3)));
      no = (fun st n -> Some (of_g (Random_graphs.connected_gnp st (even n) 0.3)));
    };
    {
      id = "T1a-14";
      scheme = Non_bipartite.scheme;
      paper_class = "Θ(log n)";
      yes = (fun _ n -> Some (of_g (Builders.cycle (odd n))));
      no = (fun _ n -> Some (of_g (Builders.cycle (even n))));
    };
    {
      id = "T1a-15";
      scheme = Tree_universal.fixpoint_free_symmetry;
      paper_class = "Θ(n)";
      yes =
        (fun st n ->
          let k = max 2 (n / 2) in
          let t = Random_graphs.tree st k in
          let t' = Canonical.shifted t k in
          Some
            (of_g
               (Graph.add_edge (Graph.union_disjoint t t')
                  (List.hd (Graph.nodes t))
                  (List.hd (Graph.nodes t')))));
      no = (fun _ n -> Some (of_g (Builders.star (max 3 n))));
    };
    {
      id = "T1a-16";
      scheme = Universal.symmetric;
      paper_class = "Θ(n²)";
      yes = (fun _ n -> Some (of_g (Builders.cycle (max 3 n))));
      no =
        (fun st n ->
          let sample =
            Enumerate.sample_asymmetric_connected st ~n:(max 6 (min n 8)) ~count:1
              ~attempts:2000
          in
          match sample with g :: _ -> Some (of_g g) | [] -> None);
    };
    {
      id = "T1a-17";
      scheme = Universal.non_3_colourable;
      paper_class = "Ω(n²/log n)‥O(n²)";
      yes = (fun _ n -> Some (of_g (Builders.wheel (odd (max 5 (n - 1))))));
      no = (fun _ n -> Some (of_g (Builders.cycle (odd n))));
    };
    {
      id = "T1b-1";
      scheme = Matching_schemes.maximal;
      paper_class = "0";
      yes =
        (fun st n ->
          let g = Random_graphs.connected_gnp st (max 4 n) 0.3 in
          Some (Instance.flag_edges (of_g g) (Matching.greedy_maximal g)));
      no =
        (fun _ n ->
          (* the empty matching on a graph with at least one edge *)
          Some (Instance.flag_edges (of_g (Builders.cycle (max 3 n))) []));
    };
    {
      id = "T1b-3";
      scheme = Matching_schemes.maximum_bipartite;
      paper_class = "Θ(1)";
      yes =
        (fun st n ->
          let g = Random_graphs.bipartite st (max 2 (n / 2)) (max 2 (n / 2)) 0.5 in
          Some (Instance.flag_edges (of_g g) (Matching.maximum_bipartite g)));
      no =
        (fun _ _ ->
          (* maximal-but-not-maximum on a path *)
          Some (Instance.flag_edges (of_g (Builders.path 4)) [ (1, 2) ]));
    };
    {
      id = "T1b-4";
      scheme = Matching_schemes.maximum_weight_bipartite;
      paper_class = "O(log W)";
      yes =
        (fun st n ->
          let g = Random_graphs.bipartite st (max 2 (n / 2)) (max 2 (n / 2)) 0.5 in
          let w (u, v) = ((u * 5) + (v * 3)) mod 7 in
          Some
            (Matching_schemes.weighted_instance g w
               (Weighted_matching.maximum_weight g w)));
      no =
        (fun _ _ ->
          let g = Builders.cycle 4 in
          let w (u, v) = if (u, v) = (0, 1) || (u, v) = (2, 3) then 5 else 1 in
          Some (Matching_schemes.weighted_instance g w [ (1, 2) ]));
    };
    {
      id = "T1b-5";
      scheme = Leader_election.strong;
      paper_class = "Θ(log n)";
      yes =
        (fun st n ->
          let g = Random_graphs.connected_gnp st (max 3 n) 0.3 in
          Some (Leader_election.mark_leader (of_g g) (Graph.max_id g)));
      no =
        (fun st n ->
          let g = Random_graphs.connected_gnp st (max 3 n) 0.3 in
          (* nobody marked *)
          Some
            (Instance.with_node_labels (of_g g)
               (List.map (fun v -> (v, Bits.one_bit false)) (Graph.nodes g))));
    };
    {
      id = "T1b-6";
      scheme = Spanning_tree_scheme.scheme;
      paper_class = "Θ(log n)";
      yes =
        (fun st n ->
          let g = Random_graphs.connected_gnp st (max 3 n) 0.25 in
          let pairs = Traversal.spanning_tree g (List.hd (Graph.nodes g)) in
          Some
            (Instance.flag_edges (of_g g)
               (List.map (fun (v, p) -> (min v p, max v p)) pairs)));
      no =
        (fun _ n ->
          let g = Builders.cycle (max 4 n) in
          Some (Instance.flag_edges (of_g g) (Graph.edges g)));
    };
    {
      id = "T1b-7";
      scheme = Matching_schemes.maximum_on_cycle;
      paper_class = "Θ(log n)";
      yes =
        (fun _ n ->
          let g = Builders.cycle (odd n) in
          Some (Instance.flag_edges (of_g g) (Matching.maximum_on_cycle g)));
      no =
        (fun _ n ->
          let g = Builders.cycle (max 8 (even n)) in
          Some (Instance.flag_edges (of_g g) [ (1, 2) ]));
    };
    {
      id = "T1b-8";
      scheme = Hamiltonian_scheme.scheme;
      paper_class = "Θ(log n)";
      yes =
        (fun _ n ->
          let g = Builders.cycle (max 3 n) in
          Some (Instance.flag_edges (of_g g) (Graph.edges g)));
      no =
        (fun _ _ ->
          let k6 = Builders.complete 6 in
          Some
            (Instance.flag_edges (of_g k6)
               [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5) ]));
    };
    {
      id = "T1b-9";
      scheme = Acyclic.scheme;
      paper_class = "O(log n)";
      yes = (fun st n -> Some (of_g (Random_graphs.tree st (max 2 n))));
      no = (fun _ n -> Some (of_g (Builders.cycle (max 3 n))));
    };
    {
      id = "T1a-12";
      scheme = Sigma11.scheme Sentences.two_colourable;
      paper_class = "O(log n)";
      yes = (fun _ n -> Some (of_g (Builders.cycle (even (min n 10)))));
      no = (fun _ n -> Some (of_g (Builders.cycle (odd (min n 9)))));
    };
  ]

let _ = none2

let find id = List.find_opt (fun e -> e.id = id) all
