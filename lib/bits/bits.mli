(** Bit strings for locally checkable proofs.

    A proof assigns a bit string to every node; the size of a proof is
    the number of bits in the longest string. This module provides an
    immutable bit-string type together with structured readers and
    writers (fixed-width integers, Elias-gamma self-delimiting
    integers, lists), so that schemes can build proofs out of typed
    fields and verifiers can parse them back without ambiguity. *)

type t
(** An immutable string of bits. *)

val empty : t
(** The empty bit string, the proof of the [LCP(0)] schemes. *)

val length : t -> int
(** [length b] is the number of bits in [b]. *)

val of_bools : bool list -> t
val to_bools : t -> bool list

val of_string : string -> t
(** [of_string s] parses a literal such as ["01101"]. Raises
    [Invalid_argument] on characters other than ['0'] and ['1']. *)

val to_string : t -> string
(** [to_string b] renders [b] as a literal such as ["01101"]. *)

val get : t -> int -> bool
(** [get b i] is bit [i] (0-based). Raises [Invalid_argument] when out
    of range. *)

val append : t -> t -> t
val concat : t list -> t

val sub : t -> int -> int -> t
(** [sub b pos len] is the [len]-bit substring starting at [pos]. *)

val take : int -> t -> t
(** [take k b] is the first [min k (length b)] bits of [b]; used to
    truncate proofs to an adversarial bit budget. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val zero : int -> t
(** [zero k] is a run of [k] zero bits. *)

val one_bit : bool -> t
(** [one_bit b] is the single-bit string [b]. *)

val random : Random.State.t -> int -> t
(** [random st k] is a uniformly random [k]-bit string. *)

val flip : t -> int -> t
(** [flip b i] is [b] with bit [i] inverted; used for tamper tests. *)

val int_width : int -> int
(** [int_width n] is the number of bits needed to write any integer in
    [0, n]] in binary, i.e. [max 1 (bits of n)]. *)

(** Appending typed fields to a bit string. *)
module Writer : sig
  type buf

  val create : unit -> buf
  val contents : buf -> t
  val bits : buf -> t -> unit
  val bool : buf -> bool -> unit

  val int_fixed : buf -> width:int -> int -> unit
  (** [int_fixed buf ~width v] writes [v >= 0] as exactly [width] bits,
      most significant first. Raises [Invalid_argument] when [v] does
      not fit. *)

  val int_gamma : buf -> int -> unit
  (** [int_gamma buf v] writes [v >= 0] in Elias-gamma code (of
      [v + 1]), a self-delimiting variable-length code using
      [2 * floor(log2 (v+1)) + 1] bits. *)

  val list : buf -> (buf -> 'a -> unit) -> 'a list -> unit
  (** [list buf f xs] writes a gamma-coded length then each element. *)
end

(** Consuming typed fields from a bit string. The reader raises
    [Decode_error] on truncated or malformed input, which verifiers
    treat as "reject". *)
module Reader : sig
  type cursor

  exception Decode_error of string

  val of_bits : t -> cursor
  val bool : cursor -> bool
  val int_fixed : cursor -> width:int -> int
  val int_gamma : cursor -> int
  val list : cursor -> (cursor -> 'a) -> 'a list
  val remaining : cursor -> int
  val at_end : cursor -> bool
  val expect_end : cursor -> unit
  (** Raises [Decode_error] unless the whole string was consumed. *)
end

val encode_int : int -> t
(** [encode_int v] is a standalone gamma encoding of [v]. *)

val decode_int : t -> int
(** Inverse of {!encode_int}; raises [Reader.Decode_error] on junk. *)
