(* Bit strings are stored as strings of '0'/'1' characters. Proof sizes
   in this library are semantic quantities (numbers of bits reported in
   Table 1), so clarity wins over packing. *)

type t = string

let empty = ""
let length = String.length

let check s =
  String.iter
    (fun c ->
      if c <> '0' && c <> '1' then
        invalid_arg (Printf.sprintf "Bits.of_string: bad character %C" c))
    s;
  s

let of_string s = check s
let to_string s = s

let of_bools bs =
  String.init (List.length bs) (fun _ -> '0')
  |> Bytes.of_string
  |> fun buf ->
  List.iteri (fun i b -> Bytes.set buf i (if b then '1' else '0')) bs;
  Bytes.to_string buf

let to_bools s = List.init (String.length s) (fun i -> s.[i] = '1')

let get s i =
  if i < 0 || i >= String.length s then invalid_arg "Bits.get: out of range";
  s.[i] = '1'

let append = ( ^ )
let concat = String.concat ""
let sub s pos len = String.sub s pos len
let take k s = String.sub s 0 (min k (String.length s))
let equal = String.equal
let compare = String.compare
let pp ppf s = Format.fprintf ppf "%s" (if s = "" then "ε" else s)
let zero k = String.make k '0'
let one_bit b = if b then "1" else "0"

let random st k = String.init k (fun _ -> if Random.State.bool st then '1' else '0')

let flip s i =
  if i < 0 || i >= String.length s then invalid_arg "Bits.flip: out of range";
  let buf = Bytes.of_string s in
  Bytes.set buf i (if s.[i] = '1' then '0' else '1');
  Bytes.to_string buf

let int_width n =
  if n < 0 then invalid_arg "Bits.int_width: negative";
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  max 1 (go 0 n)

module Writer = struct
  type buf = Buffer.t

  let create () = Buffer.create 32
  let contents = Buffer.contents
  let bits buf b = Buffer.add_string buf b
  let bool buf b = Buffer.add_char buf (if b then '1' else '0')

  let int_fixed buf ~width v =
    if v < 0 then invalid_arg "Bits.Writer.int_fixed: negative";
    if width < 0 then invalid_arg "Bits.Writer.int_fixed: negative width";
    if width < 63 && v lsr width <> 0 then
      invalid_arg
        (Printf.sprintf "Bits.Writer.int_fixed: %d does not fit in %d bits" v
           width);
    for i = width - 1 downto 0 do
      bool buf ((v lsr i) land 1 = 1)
    done

  (* Elias gamma of v+1: (width-1) zeroes, then the width binary digits
     of v+1, most significant (always 1) first. *)
  let int_gamma buf v =
    if v < 0 then invalid_arg "Bits.Writer.int_gamma: negative";
    let v = v + 1 in
    let width = int_width v in
    bits buf (zero (width - 1));
    int_fixed buf ~width v

  let list buf f xs =
    int_gamma buf (List.length xs);
    List.iter (f buf) xs
end

module Reader = struct
  type cursor = { data : string; mutable pos : int }

  exception Decode_error of string

  let of_bits data = { data; pos = 0 }

  let bool c =
    if c.pos >= String.length c.data then raise (Decode_error "truncated");
    let b = c.data.[c.pos] = '1' in
    c.pos <- c.pos + 1;
    b

  let int_fixed c ~width =
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 1) lor (if bool c then 1 else 0)
    done;
    !v

  let int_gamma c =
    let zeros = ref 0 in
    while not (bool c) do
      incr zeros;
      if !zeros > 62 then raise (Decode_error "gamma code too long")
    done;
    (* We consumed the leading 1 of the payload. *)
    let rest = int_fixed c ~width:!zeros in
    ((1 lsl !zeros) lor rest) - 1

  let list c f =
    let len = int_gamma c in
    List.init len (fun _ -> f c)

  let remaining c = String.length c.data - c.pos
  let at_end c = remaining c = 0

  let expect_end c =
    if not (at_end c) then raise (Decode_error "trailing bits")
end

let encode_int v =
  let buf = Writer.create () in
  Writer.int_gamma buf v;
  Writer.contents buf

let decode_int b =
  let c = Reader.of_bits b in
  let v = Reader.int_gamma c in
  Reader.expect_end c;
  v
