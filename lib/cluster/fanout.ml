(* Scatter-gather client for partitioned verification: one thread and
   one connection per shard, merged back into a whole-graph verdict.

   The cut happens here, on the client, by design: the router never
   decodes a graph6 payload, so the only process that ever pays the
   quadratic whole-graph encode cost is the one that already holds the
   graph. Each leg carries its own correlation id and survives one
   transport retry on a fresh connection; anything else — a typed
   backend error, a malformed reply — is final for the whole verify,
   but only reported after every leg has been joined, so a slow shard
   is never orphaned mid-flight. *)

type verdict = {
  all_accept : bool;
  owned : int;
  rejected : int;
  rejecting : int list;
  shards : int;
}

type leg = Summary of { owned : int; rejected : int; rejecting : int list }

let request_of_shard ~scheme ~proof (s : Partition.shard) =
  Wire.Verify_partition
    {
      scheme;
      graph6 = Graph6.encode s.Partition.graph;
      ids = s.Partition.ids;
      owned = Bits.of_bools (Array.to_list s.Partition.owned);
      proof = Partition.proof_slice s proof;
      radius = s.Partition.radius;
      shard_index = s.Partition.index;
      shard_count = s.Partition.count;
    }

(* One leg: connect, call, close — retried once on transport failure
   (a router retries upstream legs itself, but a bare daemon does
   not, and the second attempt costs one small frame). *)
let run_leg ~host ~port req =
  let once () =
    match Client.connect ~host ~port () with
    | Error _ as e -> e
    | Ok c ->
        let r = Client.call c req in
        Client.close c;
        r
  in
  let outcome = match once () with Error _ -> once () | r -> r in
  match outcome with
  | Error m -> Error (Printf.sprintf "transport: %s" m)
  | Ok (Wire.Partition_verified { all_accept = _; owned; rejected; rejecting })
    ->
      Ok (Summary { owned; rejected; rejecting })
  | Ok (Wire.Error_reply { code; message }) ->
      Error
        (Printf.sprintf "backend: %s: %s"
           (Wire.error_code_to_string code)
           message)
  | Ok _ -> Error "backend answered a shard with a non-partition response"

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let verify ?(host = "127.0.0.1") ?(endpoints = []) ~port ~scheme ~csr ~proof
    ~radius ~k () =
  let endpoints = if endpoints = [] then [ (host, port) ] else endpoints in
  match
    let shards = Partition.make csr ~k ~radius in
    Result.map (fun () -> shards) (Partition.check csr shards)
  with
  | exception Invalid_argument m -> Error m
  | Error m -> Error (Printf.sprintf "partition check failed: %s" m)
  | Ok shards ->
      let n = Array.length shards in
      Obs.Trace.span_arg "fanout.verify" "shards" n @@ fun () ->
      let reqs =
        try Ok (Array.map (request_of_shard ~scheme ~proof) shards)
        with Invalid_argument m -> Error m
      in
      Result.bind reqs @@ fun reqs ->
      Obs.Trace.instant ~arg_name:"legs" ~arg:n "fanout.scatter";
      let results = Array.make n (Error "leg never ran") in
      let ep = List.length endpoints in
      let threads =
        Array.mapi
          (fun i req ->
            let host, port = List.nth endpoints (i mod ep) in
            Thread.create (fun () -> results.(i) <- run_leg ~host ~port req) ())
          reqs
      in
      Array.iter Thread.join threads;
      let merged =
        Array.fold_left
          (fun acc r ->
            match (acc, r) with
            | (Error _ as e), _ -> e
            | Ok _, Error m -> Error m
            | Ok (o, rj, rjs), Ok (Summary s) ->
                Ok (o + s.owned, rj + s.rejected, s.rejecting :: rjs))
          (Ok (0, 0, []))
          (Array.mapi
             (fun i r ->
               Result.map_error (Printf.sprintf "shard %d/%d: %s" i n) r)
             results)
      in
      Result.map
        (fun (owned, rejected, rejecting) ->
          {
            all_accept = rejected = 0;
            owned;
            rejected;
            rejecting =
              take 64 (List.sort_uniq compare (List.concat rejecting));
            shards = n;
          })
        merged
