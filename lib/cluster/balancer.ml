(* Bounded-load backend selection over a {!Ring} and a {!Health} view.

   The pick for a key walks the ring order and takes the first backend
   that is (a) not Dead, (b) not in the caller's avoid list, and
   (c) under the bounded-load cap

     cap = max 1 (ceil (load_factor * (total_inflight + 1) / alive))

   — the "consistent hashing with bounded loads" rule: affinity wins
   while the owner is within [load_factor] of the mean load, and a hot
   key spills to the next ring node instead of stacking up. Ready
   backends are preferred over Saturated ones (a Saturated backend is
   shedding or draining; it only gets new work when no Ready backend
   can take the key), and a Dead backend is never picked, cap or no
   cap — if everything usable is over cap, the least-loaded usable
   backend takes the request rather than failing it.

   In-flight accounting is the balancer's own ([acquire] / [release]),
   guarded by one mutex; health transitions stay in {!Health}. *)

type t = {
  ring : Ring.t;
  health : Health.t;
  load_factor : float;
  inflight : int array;
  mutable total : int;
  mu : Mutex.t;
}

let create ?(load_factor = 1.25) ring health =
  if Ring.backends ring <> Health.n health then
    invalid_arg "Balancer.create: ring and health sizes differ";
  if load_factor < 1.0 then invalid_arg "Balancer.create: load_factor < 1";
  {
    ring;
    health;
    load_factor;
    inflight = Array.make (Ring.backends ring) 0;
    total = 0;
    mu = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let cap t ~alive =
  max 1
    (int_of_float
       (Float.ceil
          (t.load_factor *. float_of_int (t.total + 1) /. float_of_int alive)))

let acquire t ~key ~avoid =
  (* read health outside our lock: Health has its own *)
  let states =
    Array.init (Ring.backends t.ring) (fun i -> Health.state t.health i)
  in
  let usable b = states.(b) <> Health.Dead && not (List.mem b avoid) in
  let order = Ring.order t.ring key in
  locked t @@ fun () ->
  let alive =
    Array.fold_left
      (fun a s -> if s <> Health.Dead then a + 1 else a)
      0 states
  in
  if alive = 0 then None
  else begin
    let cap = cap t ~alive in
    let first_with want =
      List.find_opt
        (fun b -> usable b && states.(b) = want && t.inflight.(b) < cap)
        order
    in
    let least_loaded () =
      List.fold_left
        (fun best b ->
          if not (usable b) then best
          else
            match best with
            | Some b' when t.inflight.(b') <= t.inflight.(b) -> best
            | _ -> Some b)
        None order
    in
    let pick =
      match first_with Health.Ready with
      | Some _ as p -> p
      | None -> (
          match first_with Health.Saturated with
          | Some _ as p -> p
          | None -> least_loaded ())
    in
    match pick with
    | None -> None
    | Some b ->
        t.inflight.(b) <- t.inflight.(b) + 1;
        t.total <- t.total + 1;
        Some b
  end

let release t b =
  locked t @@ fun () ->
  if t.inflight.(b) > 0 then begin
    t.inflight.(b) <- t.inflight.(b) - 1;
    t.total <- t.total - 1
  end

let inflight t b = locked t @@ fun () -> t.inflight.(b)
let total_inflight t = locked t @@ fun () -> t.total
