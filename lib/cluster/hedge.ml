(* First-wins cell for hedged requests.

   One cell per routed request: the primary leg is offered first; if
   it has not produced a value within the hedge delay the router
   spawns a second leg against a different backend and both race. The
   first [offer] carrying the request's correlation id wins; every
   later offer — the slower leg, a stale reply, a reply with the wrong
   rid — returns [false] and is discarded by the leg that produced it,
   so one request can never be double-counted no matter how the race
   resolves.

   OCaml's stdlib [Condition] has no timed wait, so the waiter parks
   on a pipe via [Unix.select]: [offer] and the final [fail] write one
   byte; [await] selects with the remaining budget. [dispose] closes
   the pipe under the same mutex the writers take, so a losing leg
   that finishes after the router moved on finds [disposed = true] and
   never touches a closed fd. *)

type 'a outcome = Winner of 'a | All_failed | Timeout

type 'a t = {
  rid : int;
  mu : Mutex.t;
  mutable value : 'a option;
  mutable failures : int;
  mutable legs : int;
  mutable disposed : bool;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
}

let create ~rid ~legs =
  if legs < 1 then invalid_arg "Hedge.create: legs must be >= 1";
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  {
    rid;
    mu = Mutex.create ();
    value = None;
    failures = 0;
    legs;
    disposed = false;
    pipe_r;
    pipe_w;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* call with the mutex held *)
let signal t =
  if not t.disposed then
    try ignore (Unix.write t.pipe_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

let offer t ~rid v =
  locked t @@ fun () ->
  if t.disposed || rid <> t.rid || Option.is_some t.value then false
  else begin
    t.value <- Some v;
    signal t;
    true
  end

let fail t =
  locked t @@ fun () ->
  t.failures <- t.failures + 1;
  if t.failures >= t.legs && Option.is_none t.value then signal t

let add_leg t = locked t @@ fun () -> t.legs <- t.legs + 1

let poll t =
  locked t @@ fun () ->
  match t.value with
  | Some v -> Some (Winner v)
  | None -> if t.failures >= t.legs then Some All_failed else None

let await t ~timeout_ms =
  let deadline =
    if timeout_ms < 0 then infinity
    else Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.)
  in
  let rec wait () =
    match poll t with
    | Some outcome -> outcome
    | None ->
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then Timeout
        else begin
          (match
             Unix.select [ t.pipe_r ]
               [] []
               (if remaining = infinity then -1.0 else remaining)
           with
          | [], _, _ -> ()
          | _ -> (
              try ignore (Unix.read t.pipe_r (Bytes.create 8) 0 8)
              with Unix.Unix_error _ -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          wait ()
        end
  in
  wait ()

let dispose t =
  locked t @@ fun () ->
  if not t.disposed then begin
    t.disposed <- true;
    (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
    try Unix.close t.pipe_w with Unix.Unix_error _ -> ()
  end
