(** Client-side scatter-gather for partition-parallel verification.

    [verify] cuts a compiled graph into [k] radius-r shards
    ({!Partition.make}), ships each as a {!Wire.request.Verify_partition}
    frame on its own connection and thread, and merges the per-shard
    verdicts back into exactly what a whole-graph
    {!Wire.request.Verify} would have answered. Pointed at a single
    daemon it trades one big graph6 payload (≈ n²/12 bytes to encode
    and decode) for [k] much smaller ones; pointed at an [lcp route]
    frontend the shards additionally land on distinct backends (the
    router spreads sibling shards by [shard_index]) and verify in
    parallel.

    Each leg is independent: a transport failure is retried once on a
    fresh connection, and one failing leg never aborts the others —
    the merge reports the first leg error only after every thread has
    been joined. *)

type verdict = {
  all_accept : bool;
  owned : int;  (** Owned nodes verified, summed over all shards. *)
  rejected : int;  (** Rejecting owned nodes, summed over all shards. *)
  rejecting : int list;
      (** First ≤ 64 rejecting node ids in original numbering,
          sorted; the per-shard 64-entry samples merged and re-capped,
          so the list matches a whole-graph [Verify]'s sample whenever
          fewer than 64 nodes reject. *)
  shards : int;  (** Shards actually sent ([k] clamped by the cut). *)
}

val verify :
  ?host:string ->
  ?endpoints:(string * int) list ->
  port:int ->
  scheme:string ->
  csr:Csr.t ->
  proof:Proof.t ->
  radius:int ->
  k:int ->
  unit ->
  (verdict, string) result
(** Partition, scatter, gather. [proof] is keyed by original node
    identifiers; [radius] must match the scheme's radius or every
    backend answers [Bad_request]. Errors — a failed cut, a leg that
    failed twice, a backend error reply — come back as [Error] with
    the offending shard named.

    [endpoints] scatters directly without a routing frontend: shard
    [i] goes to [endpoints.(i mod length)], so [k] shards round-robin
    over the listed daemons and every payload crosses the wire once
    instead of twice. Omitted (or empty), every leg goes to
    [host:port] — a single daemon or a router. *)
