(* Per-backend health state machine.

   Inputs arrive from two places — the router's periodic Health probes
   and passive observations from forwarding (a connect failure or a
   mid-call transport error is as informative as a failed probe) — and
   both funnel into the same two transitions:

     observe_ok ~ready     reset the failure streak; Ready or
                           Saturated per the probe's [ready] flag
     observe_failure       extend the streak; at [fail_threshold]
                           consecutive failures the backend is ejected
                           (Dead, stamped with the ejection time)

   A Dead backend stays dead for [cooldown_ms] even if an early probe
   succeeds — flap suppression: one lucky connect to a crash-looping
   process must not pull live traffic back onto it. A failure while
   dead restarts the cooldown. After the cooldown, the next ok
   reinstates it.

   Time is a parameter ([?now_ns], like {!Obs.Window}), so the
   eject/cooldown/reinstate cycle is testable without sleeping. *)

type state = Ready | Saturated | Dead

let state_to_string = function
  | Ready -> "ready"
  | Saturated -> "saturated"
  | Dead -> "dead"

type entry = {
  mutable st : state;
  mutable streak : int;  (* consecutive failures *)
  mutable ejected_at_ns : int;
}

type t = {
  entries : entry array;
  fail_threshold : int;
  cooldown_ns : int;
  mu : Mutex.t;
}

let create ?(fail_threshold = 3) ?(cooldown_ms = 1_000) n =
  if n < 1 then invalid_arg "Health.create: need at least one backend";
  {
    entries =
      Array.init n (fun _ -> { st = Ready; streak = 0; ejected_at_ns = 0 });
    fail_threshold = max 1 fail_threshold;
    cooldown_ns = max 0 cooldown_ms * 1_000_000;
    mu = Mutex.create ();
  }

let n t = Array.length t.entries

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let now_or now_ns = match now_ns with Some n -> n | None -> Obs.Clock.now_ns ()

let observe_ok ?now_ns t i ~ready =
  let now = now_or now_ns in
  locked t @@ fun () ->
  let e = t.entries.(i) in
  match e.st with
  | Dead when now - e.ejected_at_ns < t.cooldown_ns ->
      () (* cooldown: one good probe is not yet evidence of recovery *)
  | _ ->
      e.streak <- 0;
      e.st <- (if ready then Ready else Saturated)

let observe_failure ?now_ns t i =
  let now = now_or now_ns in
  locked t @@ fun () ->
  let e = t.entries.(i) in
  if e.st = Dead then e.ejected_at_ns <- now (* still failing: restart cooldown *)
  else begin
    e.streak <- e.streak + 1;
    if e.streak >= t.fail_threshold then begin
      e.st <- Dead;
      e.ejected_at_ns <- now
    end
  end

let state t i = locked t @@ fun () -> t.entries.(i).st

let alive t =
  locked t @@ fun () ->
  Array.fold_left (fun a e -> if e.st <> Dead then a + 1 else a) 0 t.entries
