(** Bounded-load backend selection: {!Ring} affinity moderated by
    live in-flight counts and the {!Health} view.

    [acquire] walks the key's ring order and picks the first backend
    that is not [Dead], not in [avoid], and under the bounded-load cap

    {[ cap = max 1 (ceil (load_factor * (total_inflight + 1) / alive)) ]}

    preferring [Ready] backends over [Saturated] ones. When every
    usable backend is over the cap the least-loaded usable one is
    picked anyway — the cap shapes load, it never fails a request. A
    [Dead] backend is {e never} picked. [acquire] increments the
    winner's in-flight count; the caller must {!release} it exactly
    once, success or failure. Thread-safe. *)

type t

val create : ?load_factor:float -> Ring.t -> Health.t -> t
(** Default [load_factor] 1.25 — a backend may run at most 25% above
    the mean in-flight load before its keys spill. Raises
    [Invalid_argument] if the ring and health track different backend
    counts, or [load_factor < 1]. *)

val acquire : t -> key:string -> avoid:int list -> int option
(** The backend to forward this key to, with its in-flight count
    already incremented — or [None] when every backend is [Dead] or in
    [avoid]. [avoid] carries the backends that already failed this
    request, so a retry never re-picks them. *)

val release : t -> int -> unit
val inflight : t -> int -> int
val total_inflight : t -> int
