(* The cluster routing frontend: one TCP endpoint speaking the same
   wire protocol as the daemons, fanning out to N backends.

   Placement is {!Ring} + {!Balancer}: the key is exactly the backend's
   compiled-verifier cache key (scheme name + MD5 of the graph6
   payload), so identical instances keep landing on the same daemon
   and hit its LRU — the whole point of routing by content rather than
   round-robin. {!Health} is fed both actively (the probe loop sends
   {!Wire.Health} to every backend) and passively (a connect failure
   or transport error during forwarding counts too).

   A compute request gets a per-request budget: up to [1 + retries]
   attempts, each on a backend that has not failed this request yet
   (the avoid list), separated by deterministic jittered exponential
   backoff ({!Client.Backoff}, seeded by the correlation id). Only
   transport failures and typed [Overloaded] sheds are retried — any
   other reply, error or not, is the backend's answer and is relayed
   as-is. With [hedge_ms > 0] the first attempt races: if the primary
   backend has not replied within the delay, a second leg is issued to
   a different backend and the first reply wins ({!Hedge}); the loser
   is discarded by correlation id and only ever cost a duplicated
   idempotent verification.

   Connections to backends are pooled per backend (plain LIFO stacks;
   a connection that saw a transport error is closed, not returned).
   The router is thread-per-client-connection like the daemon, with no
   compute of its own — its only state is routing state. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port}. *)
  backends : (string * int) list;
  vnodes : int;
  load_factor : float;
  retries : int;  (** extra forwarding attempts after the first *)
  backoff : Client.Backoff.t;
  hedge_ms : int;  (** <= 0 disables hedging *)
  probe_interval_ms : int;  (** <= 0 disables the probe thread *)
  fail_threshold : int;
  cooldown_ms : int;
  http_port : int;  (** < 0 disables the sidecar; 0 picks a port. *)
  log : Obs.Log.t option;
  trace_sample : int;
      (** Head-based trace sampling for requests arriving without a
          wire trace context; <= 0 disables. A context already on the
          frame is always honoured — the head of the chain decided. *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7412;
    backends = [];
    vnodes = 64;
    load_factor = 1.25;
    retries = 2;
    backoff = { Client.Backoff.default with base_ms = 5.0; max_ms = 200.0 };
    hedge_ms = 0;
    probe_interval_ms = 200;
    fail_threshold = 3;
    cooldown_ms = 1_000;
    http_port = -1;
    log = None;
    trace_sample = 0;
  }

(* cap on waiting for an in-flight leg once we are committed to it *)
let leg_wait_cap_ms = 60_000

(* Auxiliary counter slots in the rolling window. *)
let w_requests = 0

let w_errors = 1
let w_retries = 2
let w_hedges = 3
let w_ops = 4 (* batch sub-ops count as ops; a plain request is 1 op *)
let w_counters = 5

type backend = {
  b_host : string;
  b_port : int;
  b_name : string;  (* "host:port", the Prometheus label *)
  b_mu : Mutex.t;
  mutable b_idle : Client.t list;
  b_requests : int Atomic.t;  (* forwarding attempts *)
  b_errors : int Atomic.t;  (* attempts that failed (transport / shed) *)
  b_retries : int Atomic.t;  (* retries this backend's failures caused *)
  b_hedges : int Atomic.t;  (* hedge legs issued to this backend *)
}

type t = {
  config : config;
  sock : Unix.file_descr;
  actual_port : int;
  http_sock : Unix.file_descr option;
  actual_http_port : int;
  backends : backend array;
  ring : Ring.t;
  health : Health.t;
  balancer : Balancer.t;
  started_ns : int;
  stopping : bool Atomic.t;
  rid : int Atomic.t;
  window : Obs.Window.t;
  c_requests : int Atomic.t;
  c_retries : int Atomic.t;
  c_hedges : int Atomic.t;
  c_hedge_wins : int Atomic.t;
  c_no_backend : int Atomic.t;
  c_bad_frames : int Atomic.t;
  c_connections : int Atomic.t;
  c_shards : int Atomic.t;  (* Verify_partition frames forwarded *)
}

let listen_on host port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let actual =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (sock, actual)

let create (config : config) =
  let n = List.length config.backends in
  if n < 1 then invalid_arg "Router.create: need at least one backend";
  if config.retries < 0 then invalid_arg "Router.create: retries < 0";
  let sock, actual_port = listen_on config.host config.port in
  let http_sock, actual_http_port =
    if config.http_port < 0 then (None, -1)
    else
      match listen_on config.host config.http_port with
      | s, p -> (Some s, p)
      | exception e ->
          (try Unix.close sock with _ -> ());
          raise e
  in
  let ring = Ring.create ~vnodes:config.vnodes n in
  let health =
    Health.create ~fail_threshold:config.fail_threshold
      ~cooldown_ms:config.cooldown_ms n
  in
  {
    config;
    sock;
    actual_port;
    http_sock;
    actual_http_port;
    backends =
      Array.of_list
        (List.map
           (fun (b_host, b_port) ->
             {
               b_host;
               b_port;
               b_name = Printf.sprintf "%s:%d" b_host b_port;
               b_mu = Mutex.create ();
               b_idle = [];
               b_requests = Atomic.make 0;
               b_errors = Atomic.make 0;
               b_retries = Atomic.make 0;
               b_hedges = Atomic.make 0;
             })
           config.backends);
    ring;
    health;
    balancer = Balancer.create ~load_factor:config.load_factor ring health;
    started_ns = Obs.Clock.now_ns ();
    stopping = Atomic.make false;
    rid = Atomic.make 1;
    window = Obs.Window.create ~horizon:60 ~counters:w_counters ();
    c_requests = Atomic.make 0;
    c_retries = Atomic.make 0;
    c_hedges = Atomic.make 0;
    c_hedge_wins = Atomic.make 0;
    c_no_backend = Atomic.make 0;
    c_bad_frames = Atomic.make 0;
    c_connections = Atomic.make 0;
    c_shards = Atomic.make 0;
  }

let port t = t.actual_port
let http_port t = t.actual_http_port
let uptime_ms t = (Obs.Clock.now_ns () - t.started_ns) / 1_000_000

let err code fmt =
  Printf.ksprintf (fun message -> Wire.Error_reply { code; message }) fmt

(* The routing key doubles as the backend's compiled-verifier cache
   key (see Server.cache_key) — content-addressed placement is what
   gives the cluster cache affinity. *)
let batch_op_scheme = function
  | Wire.Op_prove { scheme; _ }
  | Wire.Op_verify { scheme; _ }
  | Wire.Op_forge { scheme; _ } ->
      scheme

let batch_op_graph = function
  | Wire.Op_prove { graph; _ }
  | Wire.Op_verify { graph; _ }
  | Wire.Op_forge { graph; _ } ->
      graph

(* Per-op routing key inside a batch — the same content key a plain
   request over that op's graph would get, so a batch op lands on the
   daemon whose LRU already holds its compiled image. The decoder
   guarantees in-range graph indices; hand-built requests with stray
   indices share one arbitrary key and get their per-op Bad_request
   from whichever backend receives them. *)
let op_key gtable op =
  let gi = batch_op_graph op in
  let g6 = if gi < Array.length gtable then gtable.(gi) else "" in
  batch_op_scheme op ^ "/" ^ Digest.to_hex (Digest.string g6)

let request_key = function
  | Wire.Prove { scheme; graph6 }
  | Wire.Verify { scheme; graph6; _ }
  | Wire.Forge { scheme; graph6; _ }
  (* a sampled verify shares the plain key on purpose: both paths
     consume the same compiled image, so cache affinity must agree *)
  | Wire.Verify_sampled { scheme; graph6; _ } ->
      scheme ^ "/" ^ Digest.to_hex (Digest.string graph6)
  | Wire.Verify_partition { scheme; graph6; ids; _ } ->
      (* same composite identity the backend caches the shard image
         under (Server.shard_identity): subgraph bytes plus the id map,
         so a re-verified shard keeps hitting the daemon whose LRU
         holds it *)
      let b = Buffer.create (String.length graph6 + (4 * Array.length ids)) in
      Buffer.add_string b graph6;
      Array.iter (fun id -> Buffer.add_string b (Printf.sprintf "\n%x" id)) ids;
      scheme ^ "/" ^ Digest.to_hex (Digest.string (Buffer.contents b))
  | Wire.Batch { graphs; ops; _ } -> (
      match ops with
      | [] -> ""
      | op :: _ -> op_key (Array.of_list graphs) op)
  | Wire.Stats | Wire.Catalog | Wire.Metrics_text | Wire.Health
  | Wire.Drain _ | Wire.Trace_export | Wire.Profile_export ->
      ""

(* A child span identity under the request's routing span; null stays
   null, so untraced requests cost nothing. *)
let child_span (tctx : Obs.Trace.ctx) =
  if tctx.Obs.Trace.span = 0 then Obs.Trace.null_ctx
  else
    {
      tctx with
      Obs.Trace.span = Obs.Trace.new_span_id ();
      parent = tctx.Obs.Trace.span;
    }

(* --- backend connections ---------------------------------------------- *)

let max_idle_per_backend = 16

let borrow t bi =
  let b = t.backends.(bi) in
  Mutex.lock b.b_mu;
  let pooled =
    match b.b_idle with
    | [] -> None
    | c :: rest ->
        b.b_idle <- rest;
        Some c
  in
  Mutex.unlock b.b_mu;
  match pooled with
  | Some c -> Ok c
  | None -> Client.connect ~host:b.b_host ~port:b.b_port ()

let give_back t bi c =
  let b = t.backends.(bi) in
  if Atomic.get t.stopping then Client.close c
  else begin
    Mutex.lock b.b_mu;
    let keep = List.length b.b_idle < max_idle_per_backend in
    if keep then b.b_idle <- c :: b.b_idle;
    Mutex.unlock b.b_mu;
    if not keep then Client.close c
  end

let drop_idle t =
  Array.iter
    (fun b ->
      Mutex.lock b.b_mu;
      let idle = b.b_idle in
      b.b_idle <- [];
      Mutex.unlock b.b_mu;
      List.iter Client.close idle)
    t.backends

(* Borrow a connection, run [f], return it on success and close it on
   transport failure — a connection that saw an error is out of
   sync. *)
let with_conn t bi f =
  match borrow t bi with
  | Error m -> Error m
  | Ok c -> (
      match f c with
      | Ok _ as r ->
          give_back t bi c;
          r
      | Error _ as r ->
          Client.close c;
          r)

(* --- health probing ---------------------------------------------------- *)

let probe_once ?now_ns t =
  Array.iteri
    (fun i _ ->
      match
        with_conn t i (fun c ->
            match Client.call c Wire.Health with
            | Ok (Wire.Health_reply h) -> Ok h
            | Ok _ -> Error "unexpected health response"
            | Error _ as e -> e)
      with
      | Ok h -> Health.observe_ok ?now_ns t.health i ~ready:h.Wire.ready
      | Error _ -> Health.observe_failure ?now_ns t.health i)
    t.backends

let probe_loop t =
  let interval_s = float_of_int t.config.probe_interval_ms /. 1000.0 in
  while not (Atomic.get t.stopping) do
    probe_once t;
    if not (Atomic.get t.stopping) then Thread.delay interval_s
  done

(* --- forwarding -------------------------------------------------------- *)

type leg_failure = [ `Overloaded of Wire.response | `Transport of string ]

(* One attempt on one backend. Feeds passive health; classifies the
   two retryable outcomes. Everything else — including backend error
   replies like Unknown_scheme — is the request's answer. *)
let attempt_on t ~rid ~tctx req bi : (Wire.response, leg_failure) result =
  let b = t.backends.(bi) in
  Atomic.incr b.b_requests;
  match borrow t bi with
  | Error m ->
      Atomic.incr b.b_errors;
      Health.observe_failure t.health bi;
      Error (`Transport m)
  | Ok c -> (
      (* the upstream span brackets exactly the request/response round
         trip on the router's clock, and the backend parents its own
         server.request span under it — that pairing is what the trace
         merger's clock-offset estimate keys on *)
      let uctx = child_span tctx in
      match
        Obs.Trace.span_ctx "router.upstream" "backend" bi uctx (fun () ->
            Client.call_id ?trace:(Client.wire_trace uctx) c ~id:rid req)
      with
      | Ok (rid', resp) -> (
          match resp with
          | Wire.Error_reply { code = (Wire.Overloaded | Wire.Unavailable) as code; _ }
            ->
              give_back t bi c;
              Atomic.incr b.b_errors;
              (* both typed declines are worth a retry elsewhere:
                 Overloaded means up-but-shedding (saturated, not
                 dead); Unavailable means the pool is shutting down,
                 so push the backend toward ejection *)
              if code = Wire.Overloaded then
                Health.observe_ok t.health bi ~ready:false
              else Health.observe_failure t.health bi;
              Error (`Overloaded resp)
          | _ when rid' <> rid ->
              (* echoed id mismatch: the connection slipped a frame *)
              Client.close c;
              Atomic.incr b.b_errors;
              Health.observe_failure t.health bi;
              Error
                (`Transport
                  (Printf.sprintf "backend %s echoed id %d for request %d"
                     b.b_name rid' rid))
          | _ ->
              give_back t bi c;
              Ok resp)
      | Error m ->
          Client.close c;
          Atomic.incr b.b_errors;
          Health.observe_failure t.health bi;
          Error (`Transport m))

(* A leg of a (possibly hedged) attempt: run it, release the balancer
   slot, then race into the cell. A reply that loses the race is
   simply dropped — [Hedge.offer] returning false is the single point
   that guarantees no double-counting. *)
let spawn_leg t ~rid ~tctx req bi ~origin cell last_failure =
  ignore
    (Thread.create
       (fun () ->
         let r = attempt_on t ~rid ~tctx req bi in
         Balancer.release t.balancer bi;
         match r with
         | Ok resp -> ignore (Hedge.offer cell ~rid (origin, resp))
         | Error e ->
             Atomic.set last_failure (Some e);
             Hedge.fail cell)
       ())

(* First attempt with hedging: race a second backend if the primary
   is silent for [hedge_ms]. Returns the used backends for the avoid
   list of a subsequent retry. *)
let hedged_attempt t ~key ~rid ~tctx req bi ~avoid =
  let cell = Hedge.create ~rid ~legs:1 in
  let last_failure = Atomic.make None in
  spawn_leg t ~rid ~tctx req bi ~origin:`Primary cell last_failure;
  let finish used outcome =
    Hedge.dispose cell;
    match outcome with
    | Hedge.Winner (origin, resp) ->
        if origin = `Hedge then Atomic.incr t.c_hedge_wins;
        (used, Ok resp)
    | Hedge.All_failed | Hedge.Timeout -> (used, Error (Atomic.get last_failure))
  in
  match Hedge.await cell ~timeout_ms:t.config.hedge_ms with
  | (Hedge.Winner _ | Hedge.All_failed) as o -> finish [ bi ] o
  | Hedge.Timeout -> (
      match Balancer.acquire t.balancer ~key ~avoid:(bi :: avoid) with
      | None ->
          (* nowhere to hedge: commit to the primary *)
          finish [ bi ] (Hedge.await cell ~timeout_ms:leg_wait_cap_ms)
      | Some b2 ->
          Atomic.incr t.c_hedges;
          Atomic.incr t.backends.(b2).b_hedges;
          Obs.Window.incr t.window w_hedges;
          Obs.Trace.instant ~arg_name:"backend" ~arg:b2 ~ctx:(child_span tctx)
            "router.hedge";
          Hedge.add_leg cell;
          spawn_leg t ~rid ~tctx req b2 ~origin:`Hedge cell last_failure;
          finish [ bi; b2 ] (Hedge.await cell ~timeout_ms:leg_wait_cap_ms))

let plain_attempt t ~rid ~tctx req bi =
  let r = attempt_on t ~rid ~tctx req bi in
  Balancer.release t.balancer bi;
  match r with
  | Ok resp -> ([ bi ], Ok resp)
  | Error e -> ([ bi ], Error (Some e))

let exhausted ~attempts last =
  match last with
  | Some (`Overloaded resp) -> resp (* relay the typed shed *)
  | Some (`Transport m) ->
      err Wire.Internal "forwarding failed after %d attempt(s): %s" attempts m
  | None -> err Wire.Internal "forwarding failed after %d attempt(s)" attempts

(* Sibling shards of one partitioned verification must land on
   distinct backends — spreading the legs is the whole point of the
   split. Content-addressed placement would stack the two shards of a
   k=2 partition on one daemon about half the time, so a
   Verify_partition picks by rotating its shard_index over the
   non-dead backends; the ring key (cache affinity) only decides when
   that pick is unusable. *)
let shard_target t ~shard_index ~avoid =
  let usable = ref [] in
  for i = Array.length t.backends - 1 downto 0 do
    if Health.state t.health i <> Health.Dead && not (List.mem i avoid) then
      usable := i :: !usable
  done;
  match !usable with
  | [] -> None
  | l -> Some (List.nth l (shard_index mod List.length l))

(* Acquire one specific backend through the balancer so in-flight
   accounting stays single-sourced; None if it died in between. *)
let acquire_exact t bi =
  let avoid =
    List.filter (( <> ) bi) (List.init (Array.length t.backends) Fun.id)
  in
  Balancer.acquire t.balancer ~key:"" ~avoid

let forward_compute t ~rid ~tctx req =
  let key = request_key req in
  let spread_index =
    match req with
    | Wire.Verify_partition { shard_index; _ } -> Some shard_index
    | _ -> None
  in
  let max_attempts = 1 + t.config.retries in
  let rec go attempt avoid last =
    let acquired =
      let spread =
        match spread_index with
        | None -> None
        | Some si -> (
            match shard_target t ~shard_index:si ~avoid with
            | None -> None
            | Some bi -> acquire_exact t bi)
      in
      match spread with
      | Some _ as p -> p
      | None -> (
          match Balancer.acquire t.balancer ~key ~avoid with
          | None when avoid <> [] ->
              (* everything usable already failed this request; a retry
                 may still land if a backend recovered, so widen *)
              Balancer.acquire t.balancer ~key ~avoid:[]
          | r -> r)
    in
    match acquired with
    | None ->
        Atomic.incr t.c_no_backend;
        err Wire.Overloaded "no backend available (%d configured, %d alive)"
          (Array.length t.backends) (Health.alive t.health)
    | Some bi -> (
        let used, outcome =
          if t.config.hedge_ms > 0 && attempt = 1 then
            hedged_attempt t ~key ~rid ~tctx req bi ~avoid
          else plain_attempt t ~rid ~tctx req bi
        in
        match outcome with
        | Ok resp -> resp
        | Error last' ->
            let last = if last' <> None then last' else last in
            if attempt >= max_attempts then exhausted ~attempts:attempt last
            else begin
              Atomic.incr t.c_retries;
              Obs.Window.incr t.window w_retries;
              Obs.Trace.instant ~arg_name:"attempt" ~arg:attempt
                ~ctx:(child_span tctx) "router.retry";
              List.iter
                (fun b -> Atomic.incr t.backends.(b).b_retries)
                used;
              let delay =
                Client.Backoff.delay_ms t.config.backoff ~seed:rid ~attempt
              in
              if delay > 0.0 then Thread.delay (delay /. 1000.0);
              go (attempt + 1) (used @ avoid) last
            end)
  in
  go 1 [] None

let fresh_rid t =
  let rec fresh () =
    let v = Atomic.fetch_and_add t.rid 1 land max_int in
    if v = 0 then fresh () else v
  in
  fresh ()

(* --- batch fan-out ------------------------------------------------------ *)

let remap_op ~newgraph ~newproof = function
  | Wire.Op_prove { scheme; graph } ->
      Wire.Op_prove { scheme; graph = newgraph graph }
  | Wire.Op_verify { scheme; graph; proof } ->
      Wire.Op_verify { scheme; graph = newgraph graph; proof = newproof proof }
  | Wire.Op_forge { scheme; graph; max_bits } ->
      Wire.Op_forge { scheme; graph = newgraph graph; max_bits }

(* A batch whose ops route to different backends is split by routing
   key: one sub-batch per key, each with minimal remapped graph and
   proof tables, forwarded concurrently (each leg gets its own rid and
   the full retry/hedge budget of [forward_compute]). Per-op replies
   are scattered back into the original op order, and a leg that fails
   outright fills its ops' slots with that error — one cold or dead
   backend degrades its share of the frame, never the whole frame.
   The common case — every op sharing one key — forwards the frame
   unchanged. *)
let forward_batch t ~rid ~tctx ~graphs ~proofs ~ops =
  match ops with
  | [] -> Wire.Batch_reply []
  | _ -> (
      let gt = Array.of_list graphs in
      let pt = Array.of_list proofs in
      (* group ops by key, preserving both first-seen key order and
         arrival order within a group *)
      let order = ref [] in
      let groups = Hashtbl.create 8 in
      List.iteri
        (fun i op ->
          let key = op_key gt op in
          match Hashtbl.find_opt groups key with
          | Some members -> members := (i, op) :: !members
          | None ->
              Hashtbl.add groups key (ref [ (i, op) ]);
              order := key :: !order)
        ops;
      match List.rev !order with
      | [] | [ _ ] ->
          forward_compute t ~rid ~tctx (Wire.Batch { graphs; proofs; ops })
      | keys ->
          Obs.Trace.instant ~arg_name:"legs" ~arg:(List.length keys)
            ~ctx:(child_span tctx) "router.split";
          let slots =
            Array.make (List.length ops)
              (Wire.Item_error
                 { code = Wire.Internal; message = "batch op never routed" })
          in
          let run_group key =
            let members = List.rev !(Hashtbl.find groups key) in
            let remap = Hashtbl.create 4 in
            let sub_graphs = ref [] in
            let newgraph gi =
              match Hashtbl.find_opt remap gi with
              | Some j -> j
              | None ->
                  let j = Hashtbl.length remap in
                  Hashtbl.add remap gi j;
                  sub_graphs :=
                    (if gi < Array.length gt then gt.(gi) else "")
                    :: !sub_graphs;
                  j
            in
            let premap = Hashtbl.create 4 in
            let sub_proofs = ref [] in
            let newproof pi =
              match Hashtbl.find_opt premap pi with
              | Some j -> j
              | None ->
                  let j = Hashtbl.length premap in
                  Hashtbl.add premap pi j;
                  sub_proofs :=
                    (if pi < Array.length pt then pt.(pi) else Proof.empty)
                    :: !sub_proofs;
                  j
            in
            let sub_ops =
              List.map (fun (_, op) -> remap_op ~newgraph ~newproof op) members
            in
            let req =
              Wire.Batch
                {
                  graphs = List.rev !sub_graphs;
                  proofs = List.rev !sub_proofs;
                  ops = sub_ops;
                }
            in
            let fill item_at =
              List.iteri (fun j (i, _) -> slots.(i) <- item_at j) members
            in
            match forward_compute t ~rid:(fresh_rid t) ~tctx req with
            | Wire.Batch_reply items when List.length items = List.length members
              ->
                let items = Array.of_list items in
                fill (fun j -> items.(j))
            | Wire.Error_reply { code; message } ->
                fill (fun _ -> Wire.Item_error { code; message })
            | _ ->
                fill (fun _ ->
                    Wire.Item_error
                      {
                        code = Wire.Internal;
                        message = "backend answered a batch with a non-batch \
                                   response";
                      })
          in
          let legs = List.map (fun key -> Thread.create run_group key) keys in
          List.iter Thread.join legs;
          Wire.Batch_reply (Array.to_list slots))

(* --- non-compute requests --------------------------------------------- *)

let health t =
  {
    Wire.ready = (not (Atomic.get t.stopping)) && Health.alive t.health > 0;
    pending = Balancer.total_inflight t.balancer;
    max_queue = 0;
    uptime_ms = uptime_ms t;
  }

(* Cluster-wide stats: every live backend's counters summed, so `lcp
   top` and loadgen pointed at the router see the whole fleet. *)
let stats_reply t =
  let acc = ref None in
  Array.iteri
    (fun i _ ->
      if Health.state t.health i <> Health.Dead then
        match
          with_conn t i (fun c ->
              match Client.call c Wire.Stats with
              | Ok (Wire.Stats_reply s) -> Ok s
              | Ok _ -> Error "unexpected stats response"
              | Error _ as e -> e)
        with
        | Error _ -> ()
        | Ok s ->
            acc :=
              Some
                (match !acc with
                | None -> s
                | Some a ->
                    {
                      Wire.requests = a.Wire.requests + s.Wire.requests;
                      cache_hits = a.Wire.cache_hits + s.Wire.cache_hits;
                      cache_misses = a.Wire.cache_misses + s.Wire.cache_misses;
                      cache_entries = a.Wire.cache_entries + s.Wire.cache_entries;
                      overloaded = a.Wire.overloaded + s.Wire.overloaded;
                      deadline_exceeded =
                        a.Wire.deadline_exceeded + s.Wire.deadline_exceeded;
                      uptime_ms = max a.Wire.uptime_ms s.Wire.uptime_ms;
                      metrics_json = "{}";
                    }))
    t.backends;
  match !acc with
  | Some s -> Wire.Stats_reply { s with Wire.uptime_ms = uptime_ms t }
  | None -> err Wire.Internal "no backend answered stats"

let catalog_reply t =
  let rec go i =
    if i >= Array.length t.backends then
      err Wire.Internal "no backend answered the catalog"
    else if Health.state t.health i = Health.Dead then go (i + 1)
    else
      match
        with_conn t i (fun c ->
            match Client.call c Wire.Catalog with
            | Ok (Wire.Catalog_reply _ as r) -> Ok r
            | Ok _ -> Error "unexpected catalog response"
            | Error _ as e -> e)
      with
      | Ok r -> r
      | Error _ -> go (i + 1)
  in
  go 0

(* --- exposition -------------------------------------------------------- *)

let metrics_text t =
  let e = Obs.Export.create () in
  Obs.Export.counter e ~help:"Requests received by the router"
    "router.requests" (Atomic.get t.c_requests);
  Obs.Export.counter e ~help:"Forwarding retries" "router.retries"
    (Atomic.get t.c_retries);
  Obs.Export.counter e ~help:"Hedge legs issued" "router.hedges"
    (Atomic.get t.c_hedges);
  Obs.Export.counter e ~help:"Requests won by the hedge leg"
    "router.hedge_wins"
    (Atomic.get t.c_hedge_wins);
  Obs.Export.counter e ~help:"Requests with no usable backend"
    "router.no_backend"
    (Atomic.get t.c_no_backend);
  Obs.Export.counter e ~help:"Unparseable frames" "router.bad_frames"
    (Atomic.get t.c_bad_frames);
  Obs.Export.counter e ~help:"Partition shards forwarded"
    "router.partition_shards"
    (Atomic.get t.c_shards);
  Obs.Export.counter e ~help:"Client connections accepted"
    "router.connections"
    (Atomic.get t.c_connections);
  Obs.Export.gauge e ~help:"Configured backends" "router.backends"
    (float_of_int (Array.length t.backends));
  Obs.Export.gauge e ~help:"Backends not ejected" "router.alive_backends"
    (float_of_int (Health.alive t.health));
  Obs.Export.gauge e ~help:"Requests in flight to backends"
    "router.inflight"
    (float_of_int (Balancer.total_inflight t.balancer));
  Obs.Export.gauge e ~help:"Seconds since the router started"
    "router.uptime_seconds"
    (float_of_int (uptime_ms t) /. 1000.0);
  Obs.Export.gauge e ~help:"1 when at least one backend is usable"
    "router.ready"
    (if (health t).Wire.ready then 1.0 else 0.0);
  Array.iteri
    (fun i b ->
      let labels = [ ("backend", b.b_name) ] in
      Obs.Export.counter e ~labels ~help:"Forwarding attempts per backend"
        "router.backend_requests"
        (Atomic.get b.b_requests);
      Obs.Export.counter e ~labels ~help:"Failed attempts per backend"
        "router.backend_errors" (Atomic.get b.b_errors);
      Obs.Export.counter e ~labels ~help:"Retries caused per backend"
        "router.backend_retries"
        (Atomic.get b.b_retries);
      Obs.Export.counter e ~labels ~help:"Hedge legs issued per backend"
        "router.backend_hedges" (Atomic.get b.b_hedges);
      Obs.Export.gauge e ~labels ~help:"In-flight requests per backend"
        "router.backend_inflight"
        (float_of_int (Balancer.inflight t.balancer i));
      let st = Health.state t.health i in
      Obs.Export.gauge e ~labels ~help:"1 unless the backend is ejected"
        "router.backend_up"
        (if st <> Health.Dead then 1.0 else 0.0);
      Obs.Export.gauge e ~labels
        ~help:"Backend state: 0 ready, 1 saturated, 2 dead"
        "router.backend_state"
        (match st with
        | Health.Ready -> 0.0
        | Health.Saturated -> 1.0
        | Health.Dead -> 2.0))
    t.backends;
  List.iter
    (fun seconds ->
      let w = Obs.Window.stats ~seconds t.window in
      let labels = [ ("window", string_of_int w.Obs.Window.seconds ^ "s") ] in
      Obs.Export.window_summary e
        ~help:"Routed request latency in microseconds, rolling window"
        "router.request_us" w;
      Obs.Export.gauge e ~labels ~help:"Routed requests per second"
        "router.request_rate" w.Obs.Window.rate;
      Obs.Export.gauge e ~labels
        ~help:"Routed operations per second (batch sub-ops counted singly)"
        "router.op_rate"
        (float_of_int w.Obs.Window.counters.(w_ops)
        /. float_of_int w.Obs.Window.seconds);
      Obs.Export.gauge e ~labels ~help:"Error responses per second"
        "router.error_rate"
        (float_of_int w.Obs.Window.counters.(w_errors)
        /. float_of_int w.Obs.Window.seconds))
    [ 1; 10; 60 ];
  (* the router's own GC/profiler telemetry: its hot path is header
     shuffling and connection pooling, which is exactly where an
     allocation regression would hide *)
  Obs.Profile.exposition e;
  Obs.Export.contents e

(* --- stats ------------------------------------------------------------- *)

type backend_stats = {
  name : string;
  state : Health.state;
  requests : int;
  errors : int;
  retries : int;
  hedges : int;
  inflight : int;
}

type stats = {
  requests : int;
  retries : int;
  hedges : int;
  hedge_wins : int;
  no_backend : int;
  bad_frames : int;
  connections : int;
  per_backend : backend_stats list;
}

let stats t =
  {
    requests = Atomic.get t.c_requests;
    retries = Atomic.get t.c_retries;
    hedges = Atomic.get t.c_hedges;
    hedge_wins = Atomic.get t.c_hedge_wins;
    no_backend = Atomic.get t.c_no_backend;
    bad_frames = Atomic.get t.c_bad_frames;
    connections = Atomic.get t.c_connections;
    per_backend =
      Array.to_list
        (Array.mapi
           (fun i b ->
             {
               name = b.b_name;
               state = Health.state t.health i;
               requests = Atomic.get b.b_requests;
               errors = Atomic.get b.b_errors;
               retries = Atomic.get b.b_retries;
               hedges = Atomic.get b.b_hedges;
               inflight = Balancer.inflight t.balancer i;
             })
           t.backends);
  }

(* --- request dispatch -------------------------------------------------- *)

let outcome_of = function
  | Wire.Error_reply { code; _ } -> Wire.error_code_to_string code
  | _ -> "ok"

let request_kind = function
  | Wire.Prove _ -> "prove"
  | Wire.Verify _ -> "verify"
  | Wire.Forge _ -> "forge"
  | Wire.Verify_partition _ -> "verify_partition"
  | Wire.Verify_sampled _ -> "verify_sampled"
  | Wire.Batch _ -> "batch"
  | Wire.Stats -> "stats"
  | Wire.Catalog -> "catalog"
  | Wire.Metrics_text -> "metrics"
  | Wire.Health -> "health"
  | Wire.Drain _ -> "drain"
  | Wire.Trace_export -> "trace"
  | Wire.Profile_export -> "profile"

let handle_request t ~rid ~tctx req =
  Atomic.incr t.c_requests;
  let t0 = Obs.Clock.now_ns () in
  let resp =
    Obs.Trace.span_ctx "router.request" "rid" rid tctx @@ fun () ->
    match req with
    | Wire.Health -> Wire.Health_reply (health t)
    | Wire.Metrics_text -> Wire.Metrics_text_reply (metrics_text t)
    | Wire.Stats -> stats_reply t
    | Wire.Catalog -> catalog_reply t
    | Wire.Trace_export ->
        (* the router's own ring, answered locally — each process in
           the cluster exports its own lane *)
        Wire.Trace_export_reply
          (if !Obs.Trace.enabled then Obs.Trace.export_string ()
           else "{\"traceEvents\":[],\"dropped\":0}")
    | Wire.Profile_export ->
        (* local, like Trace_export: each process profiles itself *)
        Wire.Profile_export_reply (Obs.Profile.export_string ())
    | Wire.Drain _ ->
        err Wire.Bad_request
          "drain is a backend-local operation: send it to a daemon, not the \
           router"
    | Wire.Batch { graphs; proofs; ops } ->
        forward_batch t ~rid ~tctx ~graphs ~proofs ~ops
    | Wire.Verify_partition { shard_index; _ } ->
        Atomic.incr t.c_shards;
        Obs.Trace.instant ~arg_name:"shard" ~arg:shard_index
          ~ctx:(child_span tctx) "router.shard";
        forward_compute t ~rid ~tctx req
    | Wire.Prove _ | Wire.Verify _ | Wire.Forge _ | Wire.Verify_sampled _ ->
        forward_compute t ~rid ~tctx req
  in
  let latency_us = (Obs.Clock.now_ns () - t0) / 1_000 in
  Obs.Window.observe t.window latency_us;
  Obs.Window.incr t.window w_requests;
  Obs.Window.add t.window w_ops
    (match req with Wire.Batch { ops; _ } -> List.length ops | _ -> 1);
  let outcome = outcome_of resp in
  if outcome <> "ok" then Obs.Window.incr t.window w_errors;
  (match t.config.log with
  | None -> ()
  | Some log ->
      let fields =
        [
          ("rid", Obs.Log.Int rid);
          ("rid_hex", Obs.Log.Str (Printf.sprintf "%x" rid));
          ("req", Obs.Log.Str (request_kind req));
          ("latency_us", Obs.Log.Int latency_us);
          ("outcome", Obs.Log.Str outcome);
        ]
      in
      let fields =
        if tctx.Obs.Trace.span <> 0 then
          fields
          @ [
              ( "trace",
                Obs.Log.Str
                  (Obs.Trace.hex_id tctx.Obs.Trace.t_hi tctx.Obs.Trace.t_lo) );
            ]
        else fields
      in
      ignore (Obs.Log.write log fields));
  resp

(* --- connections ------------------------------------------------------- *)

let bad_frame t raw message =
  Atomic.incr t.c_bad_frames;
  let code =
    if
      String.length raw >= 3
      && raw.[0] = 'L'
      && raw.[1] = 'C'
      && (Char.code raw.[2] < Wire.min_protocol_version
         || Char.code raw.[2] > Wire.protocol_version)
    then Wire.Unsupported_version
    else Wire.Bad_frame
  in
  Wire.Error_reply { code; message }

let handle_conn t fd =
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  try
    let rec loop () =
      if not (Atomic.get t.stopping) then
        match Net_io.read_exact fd Wire.header_bytes with
        | None -> ()
        | Some raw -> (
            match Wire.decode_header_err raw with
            | Error (Wire.Bad_header m) ->
                Net_io.write_all fd (Wire.encode_response (bad_frame t raw m))
            | Error (Wire.Oversized { version; tag = _; length }) ->
                (* the length field is trustworthy even when over the
                   cap: drain the payload, answer a typed error naming
                   the size, and keep the connection framed *)
                Atomic.incr t.c_bad_frames;
                if Net_io.skip_exact fd length then begin
                  Net_io.write_all fd
                    (Wire.encode_response ~version
                       (err Wire.Bad_request
                          "payload of %d bytes exceeds the %d byte cap" length
                          Wire.max_payload));
                  loop ()
                end
            | Ok { Wire.version; tag; length } -> (
                match Net_io.read_exact fd length with
                | None -> ()
                | Some payload ->
                    let id, trace, resp =
                      match
                        Wire.decode_request_payload ~version ~tag payload
                      with
                      | Error m ->
                          Atomic.incr t.c_bad_frames;
                          (0, None, err Wire.Bad_request "%s" m)
                      | Ok (id, wire_trace, req) ->
                          (* the router always talks v2 to backends, so
                             a v1 client's requests still get a rid for
                             hedging and logs; the reply speaks the
                             client's version, which elides it *)
                          let rid = if id <> 0 then id else fresh_rid t in
                          let tctx =
                            match wire_trace with
                            | Some
                                { Wire.trace_hi; trace_lo; parent_span } ->
                                {
                                  Obs.Trace.t_hi = trace_hi;
                                  t_lo = trace_lo;
                                  span = Obs.Trace.new_span_id ();
                                  parent = parent_span;
                                }
                            | None ->
                                if
                                  Obs.Trace.sample
                                    ~every:t.config.trace_sample rid
                                then Obs.Trace.ctx_of_rid rid
                                else Obs.Trace.null_ctx
                          in
                          (rid, wire_trace, handle_request t ~rid ~tctx req)
                    in
                    Net_io.write_all fd
                      (Wire.encode_response ~version ~id ?trace resp);
                    loop ()))
    in
    loop ()
  with Unix.Unix_error _ -> ()

(* --- HTTP sidecar ------------------------------------------------------ *)

let http_reply t path =
  match path with
  | "/metrics" ->
      Http_sidecar.response ~status:"200 OK"
        ~content_type:Http_sidecar.prometheus_content_type (metrics_text t)
  | "/healthz" ->
      Http_sidecar.response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
  | "/readyz" ->
      let alive = Health.alive t.health in
      if alive > 0 && not (Atomic.get t.stopping) then
        Http_sidecar.response ~status:"200 OK" ~content_type:"text/plain"
          (Printf.sprintf "ready: %d/%d backends alive\n" alive
             (Array.length t.backends))
      else
        Http_sidecar.response ~status:"503 Service Unavailable"
          ~content_type:"text/plain" "no usable backend\n"
  | _ -> Http_sidecar.not_found

(* --- lifecycle --------------------------------------------------------- *)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    match t.http_sock with
    | None -> ()
    | Some s ->
        (try Unix.shutdown s Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        (try Unix.close s with Unix.Unix_error _ -> ())
  end

let run t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let http_thread =
    Option.map
      (fun s ->
        Thread.create
          (fun () ->
            Http_sidecar.serve
              ~stopping:(fun () -> Atomic.get t.stopping)
              ~handler:(http_reply t) s)
          ())
      t.http_sock
  in
  let probe_thread =
    if t.config.probe_interval_ms > 0 then
      Some (Thread.create probe_loop t)
    else None
  in
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept t.sock with
      | fd, _ ->
          Atomic.incr t.c_connections;
          ignore (Thread.create (fun () -> handle_conn t fd) ());
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ when Atomic.get t.stopping -> ()
  in
  loop ();
  Option.iter Thread.join probe_thread;
  Option.iter Thread.join http_thread;
  drop_idle t

let start t = Thread.create run t
