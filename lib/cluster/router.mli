(** The cluster routing frontend behind [lcp route]: one TCP endpoint
    speaking the daemon wire protocol (v1 and v2), forwarding to N
    backend daemons.

    {2 Placement}

    Compute requests (prove / verify / forge) route by content: the
    key is the backend's own compiled-verifier cache key — scheme name
    plus MD5 of the graph6 payload ({!request_key}) — walked over a
    {!Ring} with bounded-load spill ({!Balancer}). Identical instances
    keep hitting the same daemon's LRU, so a cluster run's total cache
    misses match a single warmed daemon's.

    {2 Resilience}

    Backend health ({!Health}) is driven by a probe loop sending
    {!Wire.Health} every [probe_interval_ms] and by passive forwarding
    failures; a backend is ejected after [fail_threshold] consecutive
    failures and reinstated after [cooldown_ms]. Each compute request
    has a budget of [1 + retries] attempts with jittered exponential
    backoff ({!Client.Backoff}, seeded by the correlation id), never
    re-trying a backend that already failed the request. Only
    transport failures and typed [Overloaded] sheds retry. With
    [hedge_ms > 0] the first attempt races a second backend after the
    delay; the first reply wins and the loser is discarded by
    correlation id ({!Hedge}).

    {2 Endpoints}

    [Health] / [Metrics_text] / [Trace_export] are answered locally
    (router readiness = at least one backend alive; router Prometheus
    exposition; the router's own trace-ring lane — fetch each process
    separately and join with [lcp trace merge]);
    [Stats] aggregates every live backend; [Catalog] is forwarded;
    [Drain] is refused with [Bad_request] — it is a backend-local
    admin operation. The optional HTTP sidecar serves [/metrics],
    [/healthz] and [/readyz] (503 when no backend is usable). *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port}. *)
  backends : (string * int) list;
  vnodes : int;  (** ring points per backend *)
  load_factor : float;  (** bounded-load spill threshold (>= 1) *)
  retries : int;  (** extra forwarding attempts after the first *)
  backoff : Client.Backoff.t;
  hedge_ms : int;  (** <= 0 disables hedging *)
  probe_interval_ms : int;  (** <= 0 disables the probe thread *)
  fail_threshold : int;
  cooldown_ms : int;
  http_port : int;  (** < 0 disables the sidecar; 0 picks a port. *)
  log : Obs.Log.t option;
  trace_sample : int;
      (** Head-based trace sampling ({!Obs.Trace.sample}) for requests
          arriving without a wire trace context; <= 0 (default)
          disables. A frame that already carries a context is always
          traced — the head of the call chain decided, and the same
          1-in-N rid hash on client, router and backend keeps their
          decisions aligned. *)
}

val default_config : config
(** 127.0.0.1:7412, no backends (callers must fill them in), 64
    vnodes, load factor 1.25, 2 retries with a 5ms-base/200ms-cap
    backoff, hedging off, 200ms probes, eject after 3 failures with a
    1s cooldown, no sidecar, no log. *)

type t

val create : config -> t
(** Bind and listen; raises [Invalid_argument] on an empty backend
    list or negative retries, [Unix.Unix_error] if a port is taken.
    Nothing is accepted (and no probe runs) until {!run}. *)

val port : t -> int
val http_port : t -> int

val run : t -> unit
(** Accept loop; blocks until {!stop}. Starts the probe thread and
    the HTTP sidecar, joins both before returning. *)

val start : t -> Thread.t
val stop : t -> unit

val probe_once : ?now_ns:int -> t -> unit
(** One synchronous health sweep over every backend — what the probe
    thread does each tick, exposed so tests drive the
    eject/cooldown/reinstate cycle deterministically on a virtual
    clock ([?now_ns] threads through to {!Health}). *)

val request_key : Wire.request -> string
(** The routing key of a compute request — identical to the daemon's
    compiled-verifier cache key, which is what yields cluster-wide
    cache affinity. [""] for non-compute requests. *)

val health : t -> Wire.health
(** Router readiness: [ready] iff not stopping and at least one
    backend is not ejected; [pending] is the in-flight forward count
    ([max_queue] is 0 — the router does not queue). *)

val metrics_text : t -> string
(** The router's Prometheus exposition ([lcp_router_*]): request /
    retry / hedge / no-backend counters, per-backend labelled
    attempt/error/retry/hedge counters with liveness and in-flight
    gauges, and rolling latency windows. Served as the
    {!Wire.Metrics_text} reply and on the sidecar's [/metrics]. *)

type backend_stats = {
  name : string;  (** "host:port" *)
  state : Health.state;
  requests : int;  (** forwarding attempts *)
  errors : int;
  retries : int;
  hedges : int;
  inflight : int;
}

type stats = {
  requests : int;
  retries : int;
  hedges : int;
  hedge_wins : int;
  no_backend : int;
  bad_frames : int;
  connections : int;
  per_backend : backend_stats list;
}

val stats : t -> stats
