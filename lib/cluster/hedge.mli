(** First-wins cell: the synchronisation point of a hedged request.

    One cell per routed request, keyed by its correlation id. Legs
    racing on different backends call {!offer} when they have a reply
    and {!fail} when they do not; the router {!await}s with the hedge
    delay, spawns a second leg on [Timeout] (after {!add_leg}), and
    awaits again. Exactly one offer ever wins — the first one carrying
    the right rid — so a reply is never double-counted: the losing
    leg sees [offer = false] and discards its result itself.

    The timed wait is a pipe + [Unix.select] (stdlib [Condition] has
    no timed wait); {!dispose} closes the pipe under the cell's mutex,
    making late [offer] / [fail] calls from an abandoned leg safe
    no-ops. *)

type 'a outcome = Winner of 'a | All_failed | Timeout

type 'a t

val create : rid:int -> legs:int -> 'a t
(** A cell expecting [legs] racing legs (>= 1 or [Invalid_argument];
    the router starts with 1 and {!add_leg}s when it hedges). *)

val offer : 'a t -> rid:int -> 'a -> bool
(** [true] iff this offer won: the rid matches, nothing won before,
    and the cell is not disposed. A [false] return obliges the caller
    to discard [v] (release its balancer slot, return its
    connection). *)

val fail : 'a t -> unit
(** This leg finished without a usable reply. When every expected leg
    has failed, {!await} returns [All_failed]. *)

val add_leg : 'a t -> unit
(** Another leg is about to race — call before spawning it, so a
    burst of failures cannot produce a premature [All_failed]. *)

val await : 'a t -> timeout_ms:int -> 'a outcome
(** Block until a winner, all legs failed, or [timeout_ms] elapsed
    (negative = wait forever). May be called repeatedly — the router
    awaits the hedge delay, then awaits again after adding the hedge
    leg. *)

val poll : 'a t -> 'a outcome option
(** Non-blocking view: [Some] winner / [All_failed], or [None] while
    legs are still racing. *)

val dispose : 'a t -> unit
(** Close the cell's pipe. Late offers and fails become no-ops;
    idempotent. Call exactly when the routed request is decided. *)
