(** Per-backend health state, fed by active probes and passive
    forwarding failures alike.

    State machine per backend:
    - [Ready] / [Saturated] — reachable; [Saturated] means its last
      probe answered [ready = false] (pool backlog full, or draining),
      so the balancer only uses it when no [Ready] backend can take
      the key.
    - [Dead] — ejected after [fail_threshold] {e consecutive}
      failures. Stays dead for [cooldown_ms] even if a probe succeeds
      (flap suppression; a failure during the cooldown restarts it);
      the first ok after the cooldown reinstates.

    All transitions take the observation time as [?now_ns] (defaulting
    to {!Obs.Clock.now_ns}), so tests drive the whole
    eject/cooldown/reinstate cycle on a virtual clock. Thread-safe. *)

type state = Ready | Saturated | Dead

val state_to_string : state -> string

type t

val create : ?fail_threshold:int -> ?cooldown_ms:int -> int -> t
(** [create n] tracks backends [0 .. n-1], all initially [Ready].
    Defaults: [fail_threshold = 3] (clamped to >= 1),
    [cooldown_ms = 1000]. Raises [Invalid_argument] when [n < 1]. *)

val n : t -> int
val observe_ok : ?now_ns:int -> t -> int -> ready:bool -> unit
val observe_failure : ?now_ns:int -> t -> int -> unit
val state : t -> int -> state

val alive : t -> int
(** Backends currently not [Dead]. *)
