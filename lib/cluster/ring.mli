(** Consistent-hash ring over backend {e indices} [0 .. n-1].

    Placement is deterministic (MD5 of ["backend:<i>:vnode:<v>"], no
    seed), so two processes building a ring over the same backend
    count agree on every assignment — the property the tests use to
    predict which backend a key lands on.

    The ring is immutable and knows nothing about liveness: callers
    walk {!order} and skip backends their health view rejects. That
    makes "removing" a backend a filter, not a rebuild, and gives the
    classic consistent-hashing stability: only the removed backend's
    keys move (in expectation [1/n] of all keys). *)

type t

val create : ?vnodes:int -> int -> t
(** [create ~vnodes n] places [vnodes] points (default 64) for each of
    [n] backends. Raises [Invalid_argument] when [n < 1] or
    [vnodes < 1]. *)

val backends : t -> int

val order : t -> string -> int list
(** All [n] backend indices in the key's clockwise walk order — each
    exactly once, the owner first. The routing rule is "first usable
    backend in this list". *)

val owner : t -> string -> int
(** [List.hd (order t key)]: the assignment when every backend is
    usable. *)
