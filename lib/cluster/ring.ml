(* Consistent-hash ring over backend indices.

   Every backend owns [vnodes] points on a 56-bit circle (the first 7
   bytes of an MD5, so the placement is stable across processes and
   runs — no seeding, no dependence on word size). A key hashes to a
   point and walks clockwise; [order] returns every backend exactly
   once, in the order the walk first meets them. The router sends a
   key to the first {e usable} backend in that order, which is what
   makes the assignment stable: removing (or ejecting) a backend only
   reroutes the keys whose walk met it first — in expectation 1/n of
   them — and every other key keeps its backend, preserving its
   compiled-verifier cache locality.

   The ring is immutable: liveness is not its concern. Callers filter
   [order] against health state, so "removal" never rebuilds
   anything. *)

type t = { n : int; points : (int * int) array (* (hash, backend), sorted *) }

let hash_point s =
  let d = Digest.string s in
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v

let create ?(vnodes = 64) n =
  if n < 1 then invalid_arg "Ring.create: need at least one backend";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let points =
    Array.init (n * vnodes) (fun i ->
        let b = i / vnodes and v = i mod vnodes in
        (hash_point (Printf.sprintf "backend:%d:vnode:%d" b v), b))
  in
  Array.sort compare points;
  { n; points }

let backends t = t.n

(* first point with hash >= h, wrapping past the top of the circle *)
let start_index t h =
  let lo = ref 0 and hi = ref (Array.length t.points) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = Array.length t.points then 0 else !lo

let order t key =
  let start = start_index t (hash_point key) in
  let len = Array.length t.points in
  let seen = Array.make t.n false in
  let out = ref [] and found = ref 0 and i = ref 0 in
  while !found < t.n && !i < len do
    let _, b = t.points.((start + !i) mod len) in
    if not seen.(b) then begin
      seen.(b) <- true;
      out := b :: !out;
      incr found
    end;
    incr i
  done;
  List.rev !out

let owner t key = List.hd (order t key)
