let fingerprint view =
  let g = View.graph view in
  let buf = Bits.Writer.create () in
  Bits.Writer.int_gamma buf (View.centre view);
  Bits.Writer.int_gamma buf (View.radius view);
  (* the ball graph with identifiers *)
  Bits.Writer.bits buf (Graph_code.encode g);
  (* labels, proofs (length-prefixed), in node order *)
  let field b =
    Bits.Writer.int_gamma buf (Bits.length b);
    Bits.Writer.bits buf b
  in
  Graph.iter_nodes (fun v -> field (View.label_of view v)) g;
  Graph.iter_nodes (fun v -> field (View.proof_of view v)) g;
  Graph.iter_edges (fun u v -> field (View.edge_label_of view u v)) g;
  field (View.globals view);
  Bits.Writer.contents buf

let fingerprint_bits view = Bits.length (fingerprint view)

type table = {
  scheme : Scheme.t;
  cells : (string, bool) Hashtbl.t;
  mutable max_key : int;
}

let tabulate scheme = { scheme; cells = Hashtbl.create 256; max_key = 0 }

let run t inst proof v =
  let view = View.make inst proof ~centre:v ~radius:t.scheme.Scheme.radius in
  let key = Bits.to_string (fingerprint view) in
  t.max_key <- max t.max_key (String.length key);
  match Hashtbl.find_opt t.cells key with
  | Some answer -> answer
  | None ->
      let answer =
        try t.scheme.Scheme.verifier view
        with Bits.Reader.Decode_error _ -> false
      in
      Hashtbl.replace t.cells key answer;
      answer

let decide t inst proof =
  let rejecting =
    Graph.fold_nodes
      (fun v acc -> if run t inst proof v then acc else v :: acc)
      (Instance.graph inst) []
  in
  match rejecting with [] -> Scheme.Accept | vs -> Scheme.Reject (List.rev vs)

let entries t = Hashtbl.length t.cells
let max_key_bits t = t.max_key
