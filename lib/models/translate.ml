(** The two scheme translations of Section 7.1, showing that LogLCP is
    the same class in model M1 (unique identifiers) and model M2 (port
    numbering plus a leader) — each direction costs O(log n) extra
    proof bits.

    - [m1_of_m2]: an M2 scheme needs a designated leader; in M1 the
      prover elects one (and certifies uniqueness with a spanning
      tree), then runs the M2 scheme.
    - [m2_of_m1]: an M1 scheme needs unique identifiers; in M2 the
      prover synthesises them from DFS intervals on a certified
      spanning tree, whose local consistency forces global uniqueness.
      The resulting verifier never reads the true identifiers except
      through the proof, which is exactly what "works under port
      numbering" means operationally. *)

(* --- M2 -> M1 ------------------------------------------------------ *)

(* Outer proof: leader bit ++ tree certificate ++ gamma(len) ++ inner
   proof bits. *)
let encode_m1 ~leader ~cert ~inner =
  let buf = Bits.Writer.create () in
  Bits.Writer.bool buf leader;
  Tree_cert.write buf cert;
  Bits.Writer.int_gamma buf (Bits.length inner);
  Bits.Writer.bits buf inner;
  Bits.Writer.contents buf

let decode_m1 b =
  let cur = Bits.Reader.of_bits b in
  let leader = Bits.Reader.bool cur in
  let cert = Tree_cert.read cur in
  let len = Bits.Reader.int_gamma cur in
  if len > Bits.Reader.remaining cur then
    raise (Bits.Reader.Decode_error "inner proof overruns");
  let inner = Bits.of_bools (List.init len (fun _ -> Bits.Reader.bool cur)) in
  Bits.Reader.expect_end cur;
  (leader, cert, inner)

(** [m1_of_m2 inner] — [inner] expects instances whose node labels mark
    exactly one leader (bit 0). The result works on unmarked instances
    of the same property over connected graphs. *)
let m1_of_m2 (inner : Scheme.t) =
  let radius = max 1 inner.Scheme.radius in
  Scheme.make
    ~name:(Printf.sprintf "m1-of-m2-%s" inner.Scheme.name)
    ~radius
    ~size_bound:(fun n -> Tree_cert.size_bound n + inner.Scheme.size_bound n + (2 * Bits.int_width (max 2 n)) + 4)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if Graph.is_empty g || not (Traversal.is_connected g) then None
      else begin
        let leader = List.hd (Graph.nodes g) in
        let marked =
          Instance.with_node_labels inst
            (List.map (fun v -> (v, Bits.one_bit (v = leader))) (Graph.nodes g))
        in
        match inner.Scheme.prover marked with
        | None -> None
        | Some inner_proof ->
            let certs = Tree_cert.prove g ~root:leader in
            Some
              (List.fold_left
                 (fun p (v, cert) ->
                   Proof.set p v
                     (encode_m1 ~leader:(v = leader) ~cert
                        ~inner:(Proof.get inner_proof v)))
                 Proof.empty certs)
      end)
    ~verifier:(fun view ->
      let cert_of u =
        let _, c, _ = decode_m1 (View.proof_of view u) in
        c
      in
      let v = View.centre view in
      let leader, cert, _ = decode_m1 (View.proof_of view v) in
      Tree_cert.check_at view ~cert_of
      && Bool.equal leader (Tree_cert.is_root cert)
      &&
      (* Re-run the inner verifier with leader marks and inner proof
         taken from the outer proof. *)
      let ball = Graph.nodes (View.graph view) in
      let marked_inst =
        Instance.with_node_labels (View.instance view)
          (List.map
             (fun u ->
               let l, _, _ = decode_m1 (View.proof_of view u) in
               (u, Bits.one_bit l))
             ball)
      in
      let inner_proof =
        List.fold_left
          (fun p u ->
            let _, _, ib = decode_m1 (View.proof_of view u) in
            Proof.set p u ib)
          Proof.empty ball
      in
      let inner_view =
        View.make marked_inst inner_proof ~centre:v ~radius:inner.Scheme.radius
      in
      try inner.Scheme.verifier inner_view
      with Bits.Reader.Decode_error _ -> false)

(* --- M1 -> M2 ------------------------------------------------------ *)

(* Outer proof: DFS interval ++ gamma(len) ++ inner proof bits (the
   inner proof is for the graph relabelled with the interval-derived
   identifiers). Crucially there is NO true-identifier content: the
   spanning tree itself is recovered from interval containment, so the
   whole proof — like a genuine M2 object — survives renaming the
   nodes. *)
let encode_m2 ~interval ~inner =
  let buf = Bits.Writer.create () in
  Dfs_labels.write buf interval;
  Bits.Writer.int_gamma buf (Bits.length inner);
  Bits.Writer.bits buf inner;
  Bits.Writer.contents buf

let decode_m2 b =
  let cur = Bits.Reader.of_bits b in
  let interval = Dfs_labels.read cur in
  let len = Bits.Reader.int_gamma cur in
  if len > Bits.Reader.remaining cur then
    raise (Bits.Reader.Decode_error "inner proof overruns");
  let inner = Bits.of_bools (List.init len (fun _ -> Bits.Reader.bool cur)) in
  Bits.Reader.expect_end cur;
  (interval, inner)

(* Interval relations. DFS times are globally unique in honest proofs,
   so any shared endpoint is an immediate rejection. *)
type relation = Disjoint | Contains_me | Inside_me | Overlap

let relate ~(mine : Dfs_labels.interval) (other : Dfs_labels.interval) =
  let d = mine.Dfs_labels.disc and f = mine.Dfs_labels.fin in
  let du = other.Dfs_labels.disc and fu = other.Dfs_labels.fin in
  if fu < d || f < du then Disjoint
  else if du < d && f < fu then Contains_me
  else if d < du && fu < f then Inside_me
  else Overlap

(* The chain rule: the intervals of the contained neighbours must tile
   (disc, fin) exactly — first child at disc+1, each next at the
   previous fin + 1, last ending at fin - 1 — and every contained
   neighbour must be used. This forces the intervals to be the exact
   DFS numbering of the containment tree. *)
let chain_ok ~mine contained =
  let d = mine.Dfs_labels.disc and f = mine.Dfs_labels.fin in
  let rec walk needed remaining =
    if needed = f then remaining = []
    else
      match
        List.partition (fun (i : Dfs_labels.interval) -> i.Dfs_labels.disc = needed) remaining
      with
      | [ child ], rest ->
          child.Dfs_labels.fin < f && walk (child.Dfs_labels.fin + 1) rest
      | _ -> false
  in
  walk (d + 1) contained

(** [m2_of_m1 inner] — instances must mark a leader (bit 0 of the node
    label); the verifier uses real identifiers only to address proof
    strings, never as data: all identifier-dependent reasoning happens
    on the proof-supplied DFS identifiers. *)
let m2_of_m1 (inner : Scheme.t) =
  let radius = max 1 inner.Scheme.radius in
  Scheme.make
    ~name:(Printf.sprintf "m2-of-m1-%s" inner.Scheme.name)
    ~radius
    ~size_bound:(fun n -> Tree_cert.size_bound n + inner.Scheme.size_bound n + (8 * Bits.int_width (max 2 n)) + 8)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      match Instance.marked_exactly_one inst with
      | None -> None
      | Some leader ->
          if not (Traversal.is_connected g) then None
          else begin
            (* BFS spanning tree rooted at the leader; DFS intervals on
               it. BFS matters for completeness: in a BFS tree the only
               graph-neighbour whose interval contains a node's is its
               parent (graph edges never skip BFS levels). *)
            let tree_pairs = Traversal.spanning_tree g leader in
            let tree =
              List.fold_left
                (fun acc (v, p) -> Graph.add_edge acc v p)
                (Graph.fold_nodes (fun v acc -> Graph.add_node acc v) g Graph.empty)
                tree_pairs
            in
            let intervals = Dfs_labels.assign tree ~root:leader in
            let id_of = Hashtbl.create 64 in
            List.iter
              (fun (v, i) -> Hashtbl.replace id_of v (Dfs_labels.to_id i))
              intervals;
            let relabelled = Instance.relabel inst (Hashtbl.find id_of) in
            match inner.Scheme.prover relabelled with
            | None -> None
            | Some inner_proof ->
                Some
                  (List.fold_left
                     (fun p (v, interval) ->
                       Proof.set p v
                         (encode_m2 ~interval
                            ~inner:(Proof.get inner_proof (Hashtbl.find id_of v))))
                     Proof.empty intervals)
          end)
    ~verifier:(fun view ->
      let v = View.centre view in
      let parse u = decode_m2 (View.proof_of view u) in
      let interval, _ = parse v in
      let leader_bit =
        let l = View.label_of view v in
        Bits.length l >= 1 && Bits.get l 0
      in
      let neighbours = View.neighbours view v in
      let relations =
        List.map (fun u -> relate ~mine:interval (fst (parse u))) neighbours
      in
      interval.Dfs_labels.disc >= 0
      && interval.Dfs_labels.fin > interval.Dfs_labels.disc
      (* the leader is exactly the time origin *)
      && Bool.equal leader_bit (interval.Dfs_labels.disc = 0)
      (* no partial interval overlaps *)
      && List.for_all (fun r -> r <> Overlap) relations
      (* exactly one parent (strict container), none at the root *)
      && List.length (List.filter (fun r -> r = Contains_me) relations)
         = (if interval.Dfs_labels.disc = 0 then 0 else 1)
      (* contained neighbours tile my interval exactly *)
      && chain_ok ~mine:interval
           (List.filter_map
              (fun u ->
                let i, _ = parse u in
                if relate ~mine:interval i = Inside_me then Some i else None)
              neighbours)
      &&
      (* Simulate the M1 verifier on the relabelled ball. *)
      let ball = Graph.nodes (View.graph view) in
      let id_of = Hashtbl.create 16 in
      List.iter
        (fun u ->
          let i, _ = parse u in
          Hashtbl.replace id_of u (Dfs_labels.to_id i))
        ball;
      match
        let relabelled =
          Instance.relabel (View.instance view) (Hashtbl.find id_of)
        in
        let inner_proof =
          List.fold_left
            (fun p u ->
              let _, ib = parse u in
              Proof.set p (Hashtbl.find id_of u) ib)
            Proof.empty ball
        in
        let inner_view =
          View.make relabelled inner_proof ~centre:(Hashtbl.find id_of v)
            ~radius:inner.Scheme.radius
        in
        inner.Scheme.verifier inner_view
      with
      | exception Invalid_argument _ ->
          false (* identifier collision inside the ball: reject *)
      | exception Bits.Reader.Decode_error _ -> false
      | ok -> ok)
