(** coLCP(0) ⊆ LogLCP on connected graphs (Section 7.3): to prove that
    an LCP(0) verifier [A] rejects the input somewhere, exhibit a
    spanning tree rooted at a rejecting node; the root re-runs [A] on
    its own view and confirms the rejection, while the tree certificate
    guarantees the root really exists. *)

let complement (inner : Scheme.t) =
  if inner.Scheme.size_bound 1 <> 0 || inner.Scheme.size_bound 1000 <> 0 then
    invalid_arg "Colcp0.complement: inner scheme must be LCP(0)";
  let radius = max 1 inner.Scheme.radius in
  Scheme.make
    ~name:(Printf.sprintf "co-%s" inner.Scheme.name)
    ~radius ~size_bound:Tree_cert.size_bound
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if Graph.is_empty g || not (Traversal.is_connected g) then None
      else begin
        let rejecting =
          Graph.fold_nodes
            (fun v acc ->
              if Scheme.verifier_output inner inst Proof.empty v then acc
              else v :: acc)
            g []
        in
        match rejecting with
        | [] -> None (* all nodes accept: the input satisfies P *)
        | a :: _ ->
            Some
              (List.fold_left
                 (fun p (v, c) -> Proof.set p v (Tree_cert.encode c))
                 Proof.empty (Tree_cert.prove g ~root:a))
      end)
    ~verifier:(fun view ->
      let cert_of u = Tree_cert.decode (View.proof_of view u) in
      Tree_cert.check_at view ~cert_of
      &&
      let c = cert_of (View.centre view) in
      if not (Tree_cert.is_root c) then true
      else begin
        (* Re-run the inner verifier at the root with the empty proof.
           Our radius dominates the inner one, so the inner view is a
           restriction of ours. *)
        let inner_view =
          View.make (View.instance view) Proof.empty ~centre:(View.centre view)
            ~radius:inner.Scheme.radius
        in
        not
          (try inner.Scheme.verifier inner_view
           with Bits.Reader.Decode_error _ -> false)
      end)

(** Ready-made instance for Table 1(a)'s "coLCP(0) properties" row:
    non-Eulerian connected graphs. *)
let non_eulerian = complement Eulerian.scheme

let non_eulerian_is_yes inst =
  let g = Instance.graph inst in
  Traversal.is_connected g && not (Euler.is_eulerian g)
