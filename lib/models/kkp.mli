(** The proof labelling scheme model of Korman, Kutten & Peleg, as
    contrasted with LCP in Section 3.2: a node's output may depend only
    on its own identifier, its own input label, its own proof label,
    and the {e proof labels} of its neighbours — not on their
    identifiers or input labels.

    The paper: "in this model, some trivial problems that are in LCL
    become unsolvable without proof labels of nonzero size; one example
    is the agreement problem" (their Lemma 2.1). Both sides of the
    separation are executable here:
    - {!agreement_indistinguishable} exhibits the indistinguishability
      argument: with empty proofs, every node's KKP view of a mixed
      labelling already occurs in some all-equal labelling, so no KKP
      verifier can solve agreement with 0 bits;
    - {!agreement} solves it with |label| proof bits (echo your label
      into your proof);
    - LCP(0) solves it outright ({!Lcl.agreement}), because LCP views
      include neighbour labels. *)

type kkp_view = {
  me : Graph.node;
  my_label : Bits.t;
  my_proof : Bits.t;
  neighbour_proofs : Bits.t list;
      (** In increasing neighbour-identifier (port) order. *)
}

type t = {
  name : string;
  size_bound : int -> int;
  prover : Instance.t -> Proof.t option;
  verifier : kkp_view -> bool;
}

val view_at : Instance.t -> Proof.t -> Graph.node -> kkp_view

val decide : t -> Instance.t -> Proof.t -> Scheme.verdict
val accepts : t -> Instance.t -> Proof.t -> bool

val to_lcp : t -> Scheme.t
(** Every KKP scheme is an LCP scheme with the same proofs (the KKP
    view is computable from the radius-1 LCP view) — "the positive
    results by Korman et al. translate directly to the LCP model". *)

val agreement : t
(** Agreement with non-zero proofs: each node's proof echoes its label;
    verify own echo and neighbour echoes. *)

val agreement_indistinguishable : Graph.t -> u:Graph.node -> bool
(** The Lemma 2.1 argument on a concrete graph: picks a mixed labelling
    (label "1" at [u], "0" elsewhere — a no-instance of agreement when
    [u] has a neighbour) and checks that, under empty proofs, every
    node's KKP view equals its view in one of the two constant
    labellings (both yes-instances). When this returns [true], no KKP
    verifier whatsoever can solve agreement with empty proofs on this
    graph. *)
