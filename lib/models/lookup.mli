(** Section 7.4, made executable: for pure properties of bounded-degree
    graphs, a LogLCP verifier reads only O(log n) bits of input in
    total, so it "can be encoded as a lookup table of size 2^O(log n)",
    i.e. polynomial — the heart of the containment in NP/poly.

    We expose the two executable halves of that observation:
    - {!fingerprint}: a canonical, self-delimiting serialisation of a
      view — exactly "the bits the verifier reads"; its length is the
      quantity the paper bounds by O(log n);
    - {!tabulate}: a table-driven clone of a verifier, memoised on
      fingerprints. Running it over instance sets shows the table stays
      polynomial while agreeing with the direct verifier everywhere. *)

val fingerprint : View.t -> Bits.t
(** Canonical encoding of (ball graph, centre, labels, proof, globals).
    Two views receive equal fingerprints iff they are equal in the
    sense of {!View.equal}. *)

val fingerprint_bits : View.t -> int

type table

val tabulate : Scheme.t -> table
(** A fresh memoised clone; entries are added on first use. *)

val run : table -> Instance.t -> Proof.t -> Graph.node -> bool
(** Table-driven verification of one node (fills the table on miss). *)

val decide : table -> Instance.t -> Proof.t -> Scheme.verdict

val entries : table -> int
(** Current table size — the paper's 2^O(log n) bound in the flesh. *)

val max_key_bits : table -> int
(** Longest fingerprint seen — the O(log n) input-size bound. *)
