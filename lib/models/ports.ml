(** Port numberings (Angluin), the communication structure of model M2
    (Section 7.1): a node of degree d refers to its neighbours as ports
    1 … d and has no access to globally unique identifiers.

    Our [View] type always carries identifiers, so M2 is modelled
    behaviourally: an M2 verifier is one whose output is invariant
    under re-assignment of the identifiers (ports are derivable from
    ids — port i = i-th smallest neighbour id — so id-invariance is
    the right notion). [invariant_under_relabelling] witnesses this
    property experimentally and is used by the model-separation
    tests. *)

let assignment g =
  (* port i (1-based) at v = i-th smallest neighbour identifier. *)
  fun v i ->
    let ns = Graph.neighbours g v in
    if i < 1 || i > List.length ns then
      invalid_arg (Printf.sprintf "Ports.assignment: port %d out of range" i)
    else List.nth ns (i - 1)

let port_of g v u =
  let rec go i = function
    | [] -> invalid_arg "Ports.port_of: not a neighbour"
    | x :: rest -> if x = u then i else go (i + 1) rest
  in
  go 1 (Graph.neighbours g v)

(** [invariant_under_relabelling st scheme inst proof ~factor] compares
    the per-node verdict vector before and after a random injective
    renaming of the identifiers (labels and proof renamed along). An
    M2-style verifier must give identical vectors; an id-reading
    verifier (e.g. a tree certificate checking "root id = my id")
    generally does not care either — the certificate is renamed too —
    so the interesting {e negative} cases are verifiers that read ids
    without the proof following them, like triangle-freeness in M1
    vs M2 (Section 7.1's example). *)
let invariant_under_relabelling st scheme inst proof ~factor =
  let g = Instance.graph inst in
  let nodes = Graph.nodes g in
  let n = List.length nodes in
  let pool = Random_graphs.shuffle st (List.init (factor * max 1 n) Fun.id) in
  let mapping = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.replace mapping v (List.nth pool i)) nodes;
  let f = Hashtbl.find mapping in
  let inst' = Instance.relabel inst f in
  let proof' =
    List.fold_left
      (fun p (v, b) -> Proof.set p v b)
      Proof.empty
      (List.map (fun (v, b) -> (f v, b)) (Proof.bindings proof))
  in
  let verdict i p =
    List.map (fun v -> Scheme.verifier_output scheme i p v) nodes
  in
  let verdict' i p =
    List.map (fun v -> Scheme.verifier_output scheme i p (f v)) nodes
  in
  verdict inst proof = verdict' inst' proof'

(** Triangle-freeness: locally checkable {e with} identifiers (model
    M1) — a node rejects when two of its neighbours are adjacent — but
    famously not in M2 without proofs: in an anonymous 6-cycle vs two
    3-cycles, ports look identical. This verifier is id-free and
    radius-1; the separation test shows it accepts no-instances when
    the family drops identifiers (simulated by quotienting). *)
let triangle_free_m1 =
  Scheme.make ~name:"triangle-free" ~radius:1
    ~size_bound:(fun _ -> 0)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      let has_triangle =
        Graph.fold_edges
          (fun u v acc ->
            acc
            || List.exists
                 (fun w -> Graph.mem_edge g u w && Graph.mem_edge g v w)
                 (Graph.nodes g))
          g false
      in
      if has_triangle then None else Some Proof.empty)
    ~verifier:(fun view ->
      let v = View.centre view in
      let ns = View.neighbours view v in
      not
        (List.exists
           (fun a ->
             List.exists
               (fun b -> a < b && Graph.mem_edge (View.graph view) a b)
               ns)
           ns))
