(** Section 7.3: coLCP(0) ⊆ LogLCP on connected graphs — reversing the
    decision of a proof-less verifier by certifying a spanning tree
    rooted at a rejecting node. *)

val complement : Scheme.t -> Scheme.t
(** [complement inner] proves that [inner]'s verifier — which must be
    an LCP(0) scheme — rejects the input somewhere. Raises
    [Invalid_argument] if [inner] claims a non-zero proof size. *)

val non_eulerian : Scheme.t
(** [complement Eulerian.scheme] — Table 1(a)'s "coLCP(0) properties"
    representative. *)

val non_eulerian_is_yes : Instance.t -> bool
