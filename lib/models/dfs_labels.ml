(** DFS interval identifiers (Section 7.1, direction M2 → M1): generate
    unique identifiers from the discovery/finishing times of a DFS on a
    rooted spanning tree. The point is that local consistency of the
    intervals — checkable by each node against its tree children —
    forces global uniqueness, so a port-numbering-plus-leader network
    can bootstrap identifiers inside a proof.

    Local consistency at node v with interval (x, y) and children
    intervals (x₁,y₁) … (x_d,y_d) ordered by x:
    - leaf: y = x + 1;
    - else: x₁ = x + 1, x_{i+1} = y_i + 1, y = y_d + 1;
    - root: x = 0.

    These checks pin every interval to the exact DFS numbering of the
    certified tree, hence all intervals are distinct. *)

type interval = { disc : int; fin : int }

let write buf i =
  Bits.Writer.int_gamma buf i.disc;
  Bits.Writer.int_gamma buf i.fin

let read cur =
  let disc = Bits.Reader.int_gamma cur in
  let fin = Bits.Reader.int_gamma cur in
  { disc; fin }

(** Cantor pairing of the interval — an injective integer identifier
    derived from (disc, fin). *)
let to_id i =
  let s = i.disc + i.fin in
  (s * (s + 1) / 2) + i.fin

let assign g ~root =
  List.map (fun (v, (x, y)) -> (v, { disc = x; fin = y })) (Traversal.dfs_intervals g root)

(** [check_locally ~mine ~children ~is_root] applies the consistency
    rules; [children] are the intervals of tree children in any
    order. *)
let check_locally ~mine ~children ~is_root =
  let sorted = List.sort (fun a b -> compare a.disc b.disc) children in
  ((not is_root) || mine.disc = 0)
  && (match sorted with
     | [] -> mine.fin = mine.disc + 1
     | first :: _ ->
         first.disc = mine.disc + 1
         &&
         let rec chain = function
           | [ last ] -> mine.fin = last.fin + 1
           | a :: (b :: _ as rest) -> b.disc = a.fin + 1 && chain rest
           | [] -> false
         in
         chain sorted)
  && mine.disc >= 0
  && mine.fin > mine.disc
