type kkp_view = {
  me : Graph.node;
  my_label : Bits.t;
  my_proof : Bits.t;
  neighbour_proofs : Bits.t list;
}

type t = {
  name : string;
  size_bound : int -> int;
  prover : Instance.t -> Proof.t option;
  verifier : kkp_view -> bool;
}

let view_at inst proof v =
  let g = Instance.graph inst in
  {
    me = v;
    my_label = Instance.node_label inst v;
    my_proof = Proof.get proof v;
    neighbour_proofs = List.map (Proof.get proof) (Graph.neighbours g v);
  }

let decide s inst proof =
  let rejecting =
    Graph.fold_nodes
      (fun v acc ->
        let ok =
          try s.verifier (view_at inst proof v)
          with Bits.Reader.Decode_error _ -> false
        in
        if ok then acc else v :: acc)
      (Instance.graph inst) []
  in
  match rejecting with [] -> Scheme.Accept | vs -> Scheme.Reject (List.rev vs)

let accepts s inst proof = decide s inst proof = Scheme.Accept

let to_lcp s =
  Scheme.make ~name:(s.name ^ "-as-lcp") ~radius:1 ~size_bound:s.size_bound
    ~prover:s.prover
    ~verifier:(fun view ->
      let v = View.centre view in
      s.verifier
        {
          me = v;
          my_label = View.label_of view v;
          my_proof = View.proof_of view v;
          neighbour_proofs = List.map (View.proof_of view) (View.neighbours view v);
        })

let agreement =
  {
    name = "kkp-agreement";
    (* gamma-length-prefixed echo of the label *)
    size_bound = (fun _ -> 64);
    prover =
      (fun inst ->
        let g = Instance.graph inst in
        (* yes-instance: all labels equal (per component is enough for
           the verifier; the problem is stated on connected graphs) *)
        let labels =
          Graph.fold_nodes (fun v acc -> Instance.node_label inst v :: acc) g []
        in
        match labels with
        | [] -> Some Proof.empty
        | l :: rest ->
            if List.for_all (Bits.equal l) rest then
              Some
                (Graph.fold_nodes
                   (fun v p ->
                     let buf = Bits.Writer.create () in
                     Bits.Writer.int_gamma buf (Bits.length l);
                     Bits.Writer.bits buf (Instance.node_label inst v);
                     Proof.set p v (Bits.Writer.contents buf))
                   g Proof.empty)
            else None);
    verifier =
      (fun view ->
        (* my proof echoes my label; neighbours' proofs equal mine *)
        let cur = Bits.Reader.of_bits view.my_proof in
        let len = Bits.Reader.int_gamma cur in
        len = Bits.length view.my_label
        && (let echoed =
              Bits.of_bools (List.init len (fun _ -> Bits.Reader.bool cur))
            in
            Bits.Reader.expect_end cur;
            Bits.equal echoed view.my_label)
        && List.for_all (Bits.equal view.my_proof) view.neighbour_proofs);
  }

(* Structural equality of KKP views. *)
let kkp_view_equal a b =
  a.me = b.me
  && Bits.equal a.my_label b.my_label
  && Bits.equal a.my_proof b.my_proof
  && List.length a.neighbour_proofs = List.length b.neighbour_proofs
  && List.for_all2 Bits.equal a.neighbour_proofs b.neighbour_proofs

let constant_labelling g bit =
  Instance.with_node_labels (Instance.of_graph g)
    (List.map (fun v -> (v, Bits.one_bit bit)) (Graph.nodes g))

let agreement_indistinguishable g ~u =
  if not (Graph.mem_node g u) then invalid_arg "Kkp: unknown node";
  if Graph.degree g u = 0 then invalid_arg "Kkp: u must have a neighbour";
  let mixed =
    Instance.with_node_labels (Instance.of_graph g)
      (List.map (fun v -> (v, Bits.one_bit (v = u))) (Graph.nodes g))
  in
  let all0 = constant_labelling g false in
  let all1 = constant_labelling g true in
  (* With empty proofs, each node's mixed view must occur verbatim in
     one of the two constant (yes-instance) labellings. *)
  Graph.fold_nodes
    (fun v acc ->
      let mixed_view = view_at mixed Proof.empty v in
      acc
      && (kkp_view_equal mixed_view (view_at all0 Proof.empty v)
         || kkp_view_equal mixed_view (view_at all1 Proof.empty v)))
    g true
