(** Port numberings (Angluin) — the communication structure of model M2
    (Section 7.1). Our views always carry identifiers, so "an M2
    verifier" is modelled behaviourally: its verdicts must be invariant
    under renaming the identifiers (ports being derivable from id
    order). *)

val assignment : Graph.t -> Graph.node -> int -> Graph.node
(** [assignment g v i] — the neighbour behind port [i] (1-based,
    i-th smallest neighbour identifier). *)

val port_of : Graph.t -> Graph.node -> Graph.node -> int
(** Inverse of {!assignment}. *)

val invariant_under_relabelling :
  Random.State.t -> Scheme.t -> Instance.t -> Proof.t -> factor:int -> bool
(** Compare per-node verdict vectors before/after a random injective
    renaming (instance and proof keys renamed; proof {e contents}
    untouched — id-free schemes survive, id-embedding ones need not). *)

val triangle_free_m1 : Scheme.t
(** Triangle-freeness: locally checkable with identifiers (model M1),
    famously not in anonymous networks — Section 7.1's separating
    example. *)
