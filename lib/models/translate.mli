(** The scheme translations of Section 7.1: LogLCP is the same class in
    model M1 (unique identifiers) and model M2 (port numbering plus a
    unique leader), at an O(log n) proof-size overhead per direction. *)

val m1_of_m2 : Scheme.t -> Scheme.t
(** [m1_of_m2 inner] — [inner] expects leader-marked instances (bit 0
    of the node label); the result proves the same property of plain
    (unmarked) connected instances, electing and certifying a leader
    inside the proof. *)

val m2_of_m1 : Scheme.t -> Scheme.t
(** [m2_of_m1 inner] — instances must carry the M2 leader mark; the
    proof holds DFS intervals from which both unique identifiers and
    the spanning tree are reconstructed, with no true-identifier
    content at all: verdicts are invariant under renaming every node
    (tested). The verifier simulates [inner] on the relabelled ball. *)
