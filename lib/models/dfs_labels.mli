(** DFS interval identifiers (Section 7.1): discovery/finishing times
    on a rooted spanning tree. Their local consistency — each node's
    children tile its open interval — forces the numbering to be a
    genuine DFS, hence globally unique; this is how a port-numbering
    network bootstraps identifiers inside a proof. *)

type interval = { disc : int; fin : int }

val write : Bits.Writer.buf -> interval -> unit
val read : Bits.Reader.cursor -> interval

val to_id : interval -> int
(** Injective (Cantor-pairing) integer identifier. *)

val assign : Graph.t -> root:Graph.node -> (Graph.node * interval) list
(** DFS on a tree (typically a spanning tree of the real graph). *)

val check_locally :
  mine:interval -> children:interval list -> is_root:bool -> bool
(** The consistency rules: root discovers at 0; a leaf finishes one
    tick after discovery; children tile the parent's open interval
    consecutively. *)
