(* Blocking socket IO shared by the daemon and the client: exact-size
   reads (frames are length-prefixed, so every read knows its size)
   and full writes, both restarted on EINTR. *)

let rec retry f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry f

(* [None] on EOF — whether the peer closed cleanly between frames or
   vanished mid-frame, the caller's only move is to drop the
   connection. *)
let read_exact fd len =
  if len = 0 then Some ""
  else begin
    let buf = Bytes.create len in
    let rec go off =
      if off = len then Some (Bytes.unsafe_to_string buf)
      else
        let k = retry (fun () -> Unix.read fd buf off (len - off)) in
        if k = 0 then None else go (off + k)
    in
    go 0
  end

(* Drain and discard exactly [len] bytes — how a peer survives an
   oversized frame: the header's length field is trustworthy, so the
   connection stays framed after the payload is thrown away. A bounded
   chunk buffer keeps a hostile length from demanding that much
   memory. False on EOF. *)
let skip_exact fd len =
  let chunk = 65536 in
  let buf = Bytes.create (min chunk (max 1 len)) in
  let rec go left =
    left = 0
    ||
    let k = retry (fun () -> Unix.read fd buf 0 (min chunk left)) in
    k > 0 && go (left - k)
  in
  go len

let write_all fd s =
  let buf = Bytes.unsafe_of_string s in
  let len = Bytes.length buf in
  let rec go off =
    if off < len then
      go (off + retry (fun () -> Unix.write fd buf off (len - off)))
  in
  go 0
