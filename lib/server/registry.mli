(** The by-name registry of every scheme the tooling can address: the
    CLI's [-s] argument, the daemon's wire requests and the cache keys
    all resolve through these names. *)

type entry = { name : string; doc : string; scheme : Scheme.t }

val all : entry list
(** In display order (the order [lcp schemes] lists). Names are
    unique. *)

val find : string -> entry option
