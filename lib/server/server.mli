(** The lcp verification daemon: a TCP service speaking {!Wire} frames
    that amortises CLI-startup, graph-parsing and verifier-compilation
    cost across requests.

    Concurrency layout: the accept loop and one lightweight system
    thread per connection do IO and framing only; all verification
    work is dispatched onto a shared {!Pool} of [jobs] worker domains,
    so CPU concurrency is bounded regardless of connection count.

    Production behaviours, all surfaced as {e typed} wire errors
    rather than hangs or dropped connections:
    - {b backpressure} — when [max_queue] tasks are already pending
      the request is answered [Overloaded] immediately
      ({!Pool.submit_opt});
    - {b deadlines} — a request that exceeds [deadline_ms] (measured
      from arrival, so queue wait counts) is answered
      [Deadline_exceeded] at the next checkpoint;
    - {b compiled-verifier cache} — an {!Lru} of {!Simulator.compiled}
      CSR images keyed by (scheme name, digest of the graph6 bytes);
      a hit skips both graph decoding and compilation. Hit/miss
      counters are visible in the [stats] endpoint and, when
      observability is on, as [server.cache_hits] / [server.cache_misses].

    {2 Telemetry}

    Every request carries a correlation id — echoed from a protocol-v2
    client or allocated by the server — stamped on the
    [server.request] / [server.queue_wait] / [server.compute] trace
    spans, the structured log line ([config.log]) and the response, so
    one request's journey across the connection thread and the worker
    domain reads as a unit. Rolling 1s/10s/60s windows (latency
    quantiles, request and error rate, cache hit ratio — always on,
    like the [stats] atomics) feed the Prometheus exposition served as
    a {!Wire.Metrics_text} reply and, when [http_port >= 0], over a
    plain-HTTP sidecar: [/metrics] (text format 0.0.4),
    [/metrics.json], [/healthz] (liveness) and [/readyz] (readiness —
    503 once the pool backlog reaches [max_queue]). Requests slower
    than [slow_ms] bump [server.slow_requests] and, with tracing on,
    dump their trace-ring slice to [slow_dir/slow-<id>.json].

    The server takes {!Obs.Metrics.guard_reset} for the lifetime of
    its worker pool (released when {!run} returns), so a concurrent
    [Metrics.reset] raises instead of corrupting live shards. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port}. *)
  jobs : int;  (** Worker domains (>= 1). *)
  cache_size : int;  (** Compiled-verifier cache capacity; 0 disables. *)
  deadline_ms : int;  (** Per-request deadline; <= 0 disables. *)
  max_queue : int;  (** Pending-task bound before shedding. *)
  http_port : int;
      (** Telemetry sidecar port; < 0 (default) disables it, 0 picks
          an ephemeral port — read it back with {!http_port}. *)
  slow_ms : int;  (** Slow-request threshold; <= 0 disables. *)
  slow_dir : string;  (** Directory for slow-request trace slices. *)
  cache_dir : string;
      (** Persistent compiled-image cache directory ({!Diskcache});
          [""] (default) disables it. With it set, every compile also
          writes the image to disk, and an LRU miss consults the disk
          tier before falling back to decode + compile — so a
          restarted daemon answers its first request for a known
          graph without a compile. *)
  log : Obs.Log.t option;  (** Structured per-request log sink. *)
  trace_sample : int;
      (** Head-based trace sampling: trace 1 in [trace_sample]
          correlation ids (deterministic — {!Obs.Trace.sample} — so
          every process keeps the same rids); <= 0 disables. A wire
          frame that already carries a trace context is always
          honoured regardless of this setting: the head of the call
          chain decided. *)
}

val default_config : config
(** 127.0.0.1:7411, 1 job, cache 128, no deadline, queue bound 256, no
    sidecar, no slow threshold, no disk cache, no log. *)

type t

val create : config -> t
(** Bind and listen (raises [Unix.Unix_error] if the port is taken)
    and spawn the worker pool. No connection is accepted until
    {!run}. *)

val port : t -> int
(** The bound port — the ephemeral one the kernel picked when
    [config.port] was 0. *)

val http_port : t -> int
(** The sidecar's bound port; -1 when [config.http_port < 0]. *)

val run : t -> unit
(** Accept loop; blocks until {!stop}, then shuts the worker pool
    down before returning. Ignores [SIGPIPE] process-wide (a vanished
    peer must surface as a write error, not kill the daemon). *)

val start : t -> Thread.t
(** {!run} on a fresh thread — join it after {!stop} to be sure the
    pool is down (the test suite and embedded uses). *)

val stop : t -> unit
(** Signal shutdown and close the listening sockets; idempotent, safe
    from signal handlers and other threads. In-flight requests still
    complete; the pool is shut down by {!run} as it exits. *)

type stats = {
  requests : int;
  batch_ops : int;  (** Batch sub-operations across all batch frames. *)
  cache_hits : int;
      (** Requests that skipped decode + compile: LRU hits plus disk
          hits. *)
  cache_misses : int;
      (** Every tier missed: the daemon decoded and compiled. A warm
          restart on a populated [cache_dir] reports zero. *)
  cache_entries : int;
  disk_hits : int;  (** Compiled images served from [cache_dir]. *)
  overloaded : int;
  unavailable : int;  (** Requests refused because the pool is stopping. *)
  deadline_exceeded : int;
  bad_frames : int;
  connections : int;
  slow_requests : int;
  partition_shards : int;
      (** {!Wire.request.Verify_partition} frames executed. *)
  partition_reject : int;
      (** Rejecting owned nodes summed across all shards. *)
  sampled_requests : int;
      (** {!Wire.request.Verify_sampled} frames executed. *)
  sampled_escalations : int;
      (** Sampled rejections that escalated to a full verification. *)
  sampled_bits_read : int;
      (** Proof/label bits consumed by sampled runs, summed. *)
}

val stats : t -> stats
(** Live counters (independent of {!Obs} being enabled). *)

val health : t -> Wire.health
(** The readiness probe: [ready] iff not stopping, not draining and
    the pool backlog is below [max_queue]. *)

val draining : t -> bool

val set_draining : t -> bool -> unit
(** Toggle graceful drain (what a {!Wire.Drain} request does): a
    draining server answers everything as usual but reports
    [ready = false], so a routing frontend stops handing it new work
    and it can be stopped once in-flight requests finish. *)

val metrics_text : t -> string
(** The Prometheus text exposition (format 0.0.4): server counters,
    readiness gauges, rolling-window summaries, and — when the
    registry is enabled — the full {!Obs.Metrics.snapshot}. Exactly
    what [/metrics] and the {!Wire.Metrics_text} reply serve. *)

val metrics_json : t -> string
(** The same view as one JSON object ([/metrics.json]). *)
