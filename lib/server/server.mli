(** The lcp verification daemon: a TCP service speaking {!Wire} frames
    that amortises CLI-startup, graph-parsing and verifier-compilation
    cost across requests.

    Concurrency layout: the accept loop and one lightweight system
    thread per connection do IO and framing only; all verification
    work is dispatched onto a shared {!Pool} of [jobs] worker domains,
    so CPU concurrency is bounded regardless of connection count.

    Production behaviours, all surfaced as {e typed} wire errors
    rather than hangs or dropped connections:
    - {b backpressure} — when [max_queue] tasks are already pending
      the request is answered [Overloaded] immediately
      ({!Pool.submit_opt});
    - {b deadlines} — a request that exceeds [deadline_ms] (measured
      from arrival, so queue wait counts) is answered
      [Deadline_exceeded] at the next checkpoint;
    - {b compiled-verifier cache} — an {!Lru} of {!Simulator.compiled}
      CSR images keyed by (scheme name, digest of the graph6 bytes);
      a hit skips both graph decoding and compilation. Hit/miss
      counters are visible in the [stats] endpoint and, when
      observability is on, as [server.cache_hits] / [server.cache_misses].

    Every request is instrumented through {!Obs.Metrics} (request
    counts by type, cache traffic, sheds, latency histogram
    [server.request_us]) and {!Obs.Trace} ([server.request] /
    [server.compile] spans) — all off by default as usual. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port}. *)
  jobs : int;  (** Worker domains (>= 1). *)
  cache_size : int;  (** Compiled-verifier cache capacity; 0 disables. *)
  deadline_ms : int;  (** Per-request deadline; <= 0 disables. *)
  max_queue : int;  (** Pending-task bound before shedding. *)
}

val default_config : config
(** 127.0.0.1:7411, 1 job, cache 128, no deadline, queue bound 256. *)

type t

val create : config -> t
(** Bind and listen (raises [Unix.Unix_error] if the port is taken)
    and spawn the worker pool. No connection is accepted until
    {!run}. *)

val port : t -> int
(** The bound port — the ephemeral one the kernel picked when
    [config.port] was 0. *)

val run : t -> unit
(** Accept loop; blocks until {!stop}, then shuts the worker pool
    down before returning. Ignores [SIGPIPE] process-wide (a vanished
    peer must surface as a write error, not kill the daemon). *)

val start : t -> Thread.t
(** {!run} on a fresh thread — join it after {!stop} to be sure the
    pool is down (the test suite and embedded uses). *)

val stop : t -> unit
(** Signal shutdown and close the listening socket; idempotent, safe
    from signal handlers and other threads. In-flight requests still
    complete; the pool is shut down by {!run} as it exits. *)

type stats = {
  requests : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  overloaded : int;
  deadline_exceeded : int;
  bad_frames : int;
  connections : int;
}

val stats : t -> stats
(** Live counters (independent of {!Obs} being enabled). *)
