(** Capacity-bounded least-recently-used cache with string keys, used
    for the server's compiled-verifier cache. Lookups and inserts are
    O(1); evicting from a full cache scans the table (O(capacity)),
    which is deliberate — capacities are small and the scan is noise
    next to the compile a hit avoids. Hit / miss / eviction counters
    ride along for the [stats] endpoint.

    Not thread-safe; callers sharing a cache across domains or threads
    must serialise access (see {!Server}). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity = 0] is a valid always-miss cache (caching disabled);
    negative capacities raise [Invalid_argument]. *)

val find : 'a t -> string -> 'a option
(** Refreshes the entry's recency and counts a hit or a miss. *)

val put : 'a t -> string -> 'a -> unit
(** Insert or overwrite; evicts the least recently used entry when the
    cache is full. A no-op at capacity 0. *)

val length : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
