(* The by-name scheme registry, shared by the CLI and the network
   service (it used to live in bin/lcp.ml; the daemon needs it too, so
   it moved behind a library interface). Names are the stable public
   identifiers: they appear in `lcp schemes`, in `-s` arguments, in
   wire requests and in cache keys. *)

type entry = { name : string; doc : string; scheme : Scheme.t }

let mk name doc scheme = { name; doc; scheme }

let all =
  [
    mk "eulerian" "Eulerian graph, LCP(0)" Eulerian.scheme;
    mk "line-graph" "line graph, LCP(0)" Line_graph_scheme.scheme;
    mk "bipartite" "bipartite graph, LCP(1)" Bipartite_scheme.scheme;
    mk "st-reach" "s-t reachability (undirected; needs s/t), LCP(1)"
      Reachability.undirected_reach;
    mk "st-unreach" "s-t unreachability (undirected)"
      Reachability.undirected_unreach;
    mk "st-unreach-dir" "s-t unreachability (directed; use arc)"
      Reachability.directed_unreach;
    mk "st-reach-dir" "directed s-t reachability, O(log Δ) pointers"
      Reachability.directed_reach_pointer;
    mk "connectivity" "s-t connectivity = k (needs s/t and k)"
      Connectivity.general;
    mk "connectivity-planar" "planar s-t connectivity = k, O(1)"
      Connectivity.planar;
    mk "chromatic" "chromatic number <= k (needs k)" Chromatic.scheme;
    mk "even-cycle" "even cycle, LCP(1)" Counting.even_cycle;
    mk "odd-n" "odd number of nodes, LogLCP" Counting.odd_n;
    mk "even-n" "even number of nodes, LogLCP" Counting.even_n;
    mk "non-bipartite" "chromatic number > 2, LogLCP" Non_bipartite.scheme;
    mk "leader" "leader election (needs leader mark)" Leader_election.strong;
    mk "leader-weak" "leader election, weak flavour" Leader_election.weak;
    mk "spanning-tree" "spanning tree (flag the tree edges)"
      Spanning_tree_scheme.scheme;
    mk "acyclic" "acyclicity, LogLCP" Acyclic.scheme;
    mk "hamiltonian" "Hamiltonian cycle (flag the cycle edges)"
      Hamiltonian_scheme.scheme;
    mk "maximal-matching" "maximal matching (flag edges), LCP(0)"
      Matching_schemes.maximal;
    mk "max-matching" "maximum matching, bipartite (flag edges)"
      Matching_schemes.maximum_bipartite;
    mk "maxw-matching" "max-weight matching (weight + flag edges)"
      Matching_schemes.maximum_weight_bipartite;
    mk "cycle-matching" "maximum matching on cycles (flag edges)"
      Matching_schemes.maximum_on_cycle;
    mk "symmetric" "symmetric graph, Θ(n²)" Universal.symmetric;
    mk "non-3-colourable" "chromatic number > 3, O(n²)"
      Universal.non_3_colourable;
    mk "tree-ffsym" "fixpoint-free tree symmetry, Θ(n)"
      Tree_universal.fixpoint_free_symmetry;
    mk "non-eulerian" "coLCP(0): non-Eulerian, LogLCP" Colcp0.non_eulerian;
    mk "sigma11-2col" "Σ¹₁: 2-colourable" (Sigma11.scheme Sentences.two_colourable);
    mk "sigma11-triangle" "Σ¹₁: has a triangle"
      (Sigma11.scheme Sentences.has_triangle);
  ]

let find name = List.find_opt (fun e -> e.name = name) all
