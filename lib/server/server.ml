(* The verification daemon.

   Thread/domain layout: the accept loop and one system thread per
   connection do only IO and framing; every prove/verify/forge lands
   on the shared {!Pool} of worker domains, so CPU concurrency is
   bounded by [jobs] no matter how many clients connect. A connection
   thread parks on a one-shot cell (mutex + condition) until its
   worker delivers the response.

   Load shedding: the pool submit is {!Pool.submit_opt} with the
   configured [max_queue] bound — when the backlog is full the request
   is answered [Overloaded] immediately instead of growing an
   unbounded queue. Deadlines are checked at the points where the
   request's fate is decided (dequeue and completion); a request that
   missed its deadline gets a typed [Deadline_exceeded] error, never a
   silently late answer or a hung connection.

   The compiled-verifier cache maps (scheme name, MD5 of the graph6
   payload) to the {!Simulator.compiled} CSR image. The graph6 string
   of a decoded graph is unique per labelled graph, so the digest is a
   canonical hash of exactly what verification consumes; a hit skips
   both the O(n^2) graph6 decode and the compile. Two workers missing
   on the same key may compile twice — harmless, the second insert
   wins — and the cache is serialised by one mutex held only around
   table operations, never around a compile. *)

let m_requests = Obs.Metrics.counter "server.requests"
let m_req_prove = Obs.Metrics.counter "server.req_prove"
let m_req_verify = Obs.Metrics.counter "server.req_verify"
let m_req_forge = Obs.Metrics.counter "server.req_forge"
let m_req_stats = Obs.Metrics.counter "server.req_stats"
let m_req_catalog = Obs.Metrics.counter "server.req_catalog"
let m_cache_hits = Obs.Metrics.counter "server.cache_hits"
let m_cache_misses = Obs.Metrics.counter "server.cache_misses"
let m_overloaded = Obs.Metrics.counter "server.overloaded"
let m_deadline = Obs.Metrics.counter "server.deadline_exceeded"
let m_bad_frames = Obs.Metrics.counter "server.bad_frames"
let m_connections = Obs.Metrics.counter "server.connections"
let m_request_us = Obs.Metrics.histogram "server.request_us"

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port}. *)
  jobs : int;
  cache_size : int;
  deadline_ms : int;  (** <= 0 disables deadlines. *)
  max_queue : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7411;
    jobs = 1;
    cache_size = 128;
    deadline_ms = 0;
    max_queue = 256;
  }

type t = {
  config : config;
  sock : Unix.file_descr;
  actual_port : int;
  pool : Pool.t;
  cache : Simulator.compiled Lru.t;
  cache_lock : Mutex.t;
  started_ns : int;
  stopping : bool Atomic.t;
  c_requests : int Atomic.t;
  c_overloaded : int Atomic.t;
  c_deadline : int Atomic.t;
  c_bad_frames : int Atomic.t;
  c_connections : int Atomic.t;
}

type stats = {
  requests : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  overloaded : int;
  deadline_exceeded : int;
  bad_frames : int;
  connections : int;
}

let create config =
  if config.jobs < 1 then invalid_arg "Server.create: jobs < 1";
  if config.max_queue < 0 then invalid_arg "Server.create: max_queue < 0";
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  {
    config;
    sock;
    actual_port;
    pool = Pool.create config.jobs;
    cache = Lru.create ~capacity:(max 0 config.cache_size);
    cache_lock = Mutex.create ();
    started_ns = Obs.Clock.now_ns ();
    stopping = Atomic.make false;
    c_requests = Atomic.make 0;
    c_overloaded = Atomic.make 0;
    c_deadline = Atomic.make 0;
    c_bad_frames = Atomic.make 0;
    c_connections = Atomic.make 0;
  }

let port t = t.actual_port

let stats t =
  Mutex.lock t.cache_lock;
  let cache_hits = Lru.hits t.cache in
  let cache_misses = Lru.misses t.cache in
  let cache_entries = Lru.length t.cache in
  Mutex.unlock t.cache_lock;
  {
    requests = Atomic.get t.c_requests;
    cache_hits;
    cache_misses;
    cache_entries;
    overloaded = Atomic.get t.c_overloaded;
    deadline_exceeded = Atomic.get t.c_deadline;
    bad_frames = Atomic.get t.c_bad_frames;
    connections = Atomic.get t.c_connections;
  }

(* --- one-shot response cells ------------------------------------------ *)

type cell = {
  cm : Mutex.t;
  cv : Condition.t;
  mutable value : Wire.response option;
}

let cell () = { cm = Mutex.create (); cv = Condition.create (); value = None }

let cell_put c v =
  Mutex.lock c.cm;
  c.value <- Some v;
  Condition.signal c.cv;
  Mutex.unlock c.cm

let cell_take c =
  Mutex.lock c.cm;
  while c.value = None do
    Condition.wait c.cv c.cm
  done;
  let v = Option.get c.value in
  Mutex.unlock c.cm;
  v

(* --- request handling ------------------------------------------------- *)

let err code fmt =
  Printf.ksprintf (fun message -> Wire.Error_reply { code; message }) fmt

let cache_key scheme graph6 =
  scheme ^ "/" ^ Digest.to_hex (Digest.string graph6)

(* Resolve the scheme, then the compiled image — from cache or by
   decoding + compiling — and hand both to [f]. *)
let with_compiled t ~scheme ~graph6 f =
  match Registry.find scheme with
  | None -> err Wire.Unknown_scheme "unknown scheme %S" scheme
  | Some entry -> (
      let key = cache_key scheme graph6 in
      Mutex.lock t.cache_lock;
      let cached = Lru.find t.cache key in
      Mutex.unlock t.cache_lock;
      match cached with
      | Some compiled ->
          Obs.Metrics.incr m_cache_hits;
          f entry compiled
      | None -> (
          Obs.Metrics.incr m_cache_misses;
          match Graph6.decode_res graph6 with
          | Error m -> err Wire.Bad_graph "%s" m
          | Ok g ->
              let compiled =
                if !Obs.Trace.enabled then
                  Obs.Trace.span "server.compile" (fun () ->
                      Simulator.compile (Instance.of_graph g))
                else Simulator.compile (Instance.of_graph g)
              in
              Mutex.lock t.cache_lock;
              Lru.put t.cache key compiled;
              Mutex.unlock t.cache_lock;
              f entry compiled))

let deadline_error t stage =
  Atomic.incr t.c_deadline;
  Obs.Metrics.incr m_deadline;
  err Wire.Deadline_exceeded "%s after the %d ms deadline" stage
    t.config.deadline_ms

(* Runs on a worker domain. [enqueue_ns] is when the connection thread
   accepted the request; the deadline is measured from there, so queue
   wait counts against it. *)
let compute t req ~enqueue_ns =
  let deadline =
    if t.config.deadline_ms <= 0 then max_int
    else enqueue_ns + (t.config.deadline_ms * 1_000_000)
  in
  if Obs.Clock.now_ns () > deadline then deadline_error t "dequeued"
  else
    let resp =
      match req with
      | Wire.Prove { scheme; graph6 } ->
          with_compiled t ~scheme ~graph6 (fun entry compiled ->
              Wire.Proved
                (entry.Registry.scheme.Scheme.prover
                   (Simulator.compiled_instance compiled)))
      | Wire.Verify { scheme; graph6; proof } ->
          with_compiled t ~scheme ~graph6 (fun entry compiled ->
              let scheme = entry.Registry.scheme in
              (* a malformed proof string means "reject here", exactly
                 as in [Scheme.decide] — it must not escape as an
                 exception *)
              let verifier view =
                try scheme.Scheme.verifier view
                with Bits.Reader.Decode_error _ -> false
              in
              let verdicts, _ =
                Simulator.run_verifier ~compiled
                  (Simulator.compiled_instance compiled)
                  proof ~radius:scheme.Scheme.radius verifier
              in
              let rejecting =
                List.filter_map
                  (fun (v, ok) -> if ok then None else Some v)
                  verdicts
              in
              Wire.Verified { accepted = rejecting = []; rejecting })
      | Wire.Forge { scheme; graph6; max_bits } ->
          if max_bits < 0 || max_bits > 64 then
            err Wire.Bad_request "max_bits %d outside [0, 64]" max_bits
          else
            with_compiled t ~scheme ~graph6 (fun entry compiled ->
                match
                  Adversary.forge entry.Registry.scheme
                    (Simulator.compiled_instance compiled)
                    ~max_bits
                with
                | Adversary.Fooled proof ->
                    Wire.Forged
                      { fooled = Some proof; attempts = 0; best_rejections = 0 }
                | Adversary.Resisted { best_rejections; attempts } ->
                    Wire.Forged { fooled = None; attempts; best_rejections })
      | Wire.Stats | Wire.Catalog ->
          (* handled inline on the connection thread *)
          err Wire.Internal "request dispatched to a worker by mistake"
    in
    if Obs.Clock.now_ns () > deadline then deadline_error t "completed"
    else resp

let dispatch t req =
  let enqueue_ns = Obs.Clock.now_ns () in
  let c = cell () in
  let task () =
    let resp =
      try compute t req ~enqueue_ns
      with e -> err Wire.Internal "%s" (Printexc.to_string e)
    in
    cell_put c resp
  in
  if Pool.submit_opt ~max_pending:t.config.max_queue t.pool task then
    cell_take c
  else begin
    Atomic.incr t.c_overloaded;
    Obs.Metrics.incr m_overloaded;
    err Wire.Overloaded "backlog full (%d tasks pending)" t.config.max_queue
  end

let stats_reply t =
  let s = stats t in
  Wire.Stats_reply
    {
      Wire.requests = s.requests;
      cache_hits = s.cache_hits;
      cache_misses = s.cache_misses;
      cache_entries = s.cache_entries;
      overloaded = s.overloaded;
      deadline_exceeded = s.deadline_exceeded;
      uptime_ms = (Obs.Clock.now_ns () - t.started_ns) / 1_000_000;
      metrics_json =
        (if !Obs.Metrics.enabled then
           Obs.Metrics.to_json (Obs.Metrics.snapshot ())
         else "{}");
    }

let catalog_reply () =
  Wire.Catalog_reply
    (List.map
       (fun e ->
         {
           Wire.name = e.Registry.name;
           radius = e.Registry.scheme.Scheme.radius;
           doc = e.Registry.doc;
         })
       Registry.all)

let handle_request t req =
  Atomic.incr t.c_requests;
  Obs.Metrics.incr m_requests;
  Obs.Metrics.incr
    (match req with
    | Wire.Prove _ -> m_req_prove
    | Wire.Verify _ -> m_req_verify
    | Wire.Forge _ -> m_req_forge
    | Wire.Stats -> m_req_stats
    | Wire.Catalog -> m_req_catalog);
  let t0 = if !Obs.Metrics.enabled then Obs.Clock.now_ns () else 0 in
  let body () =
    match req with
    | Wire.Stats -> stats_reply t
    | Wire.Catalog -> catalog_reply ()
    | _ -> dispatch t req
  in
  let resp =
    if !Obs.Trace.enabled then Obs.Trace.span "server.request" body
    else body ()
  in
  if t0 <> 0 then
    Obs.Metrics.observe m_request_us ((Obs.Clock.now_ns () - t0) / 1_000);
  resp

(* --- connections ------------------------------------------------------ *)

let bad_frame t raw message =
  Atomic.incr t.c_bad_frames;
  Obs.Metrics.incr m_bad_frames;
  let code =
    (* a correct magic with a different version byte deserves the
       typed answer; anything else is noise on the port *)
    if
      String.length raw >= 3
      && raw.[0] = 'L'
      && raw.[1] = 'C'
      && Char.code raw.[2] <> Wire.protocol_version
    then Wire.Unsupported_version
    else Wire.Bad_frame
  in
  Wire.Error_reply { code; message }

let handle_conn t fd =
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  try
    let rec loop () =
      if not (Atomic.get t.stopping) then
        match Net_io.read_exact fd Wire.header_bytes with
        | None -> ()
        | Some raw -> (
            match Wire.decode_header raw with
            | Error m ->
                (* framing lost: answer once, then drop the link *)
                Net_io.write_all fd (Wire.encode_response (bad_frame t raw m))
            | Ok { Wire.tag; length } -> (
                match Net_io.read_exact fd length with
                | None -> ()
                | Some payload ->
                    let resp =
                      match Wire.decode_request_payload ~tag payload with
                      | Error m ->
                          Atomic.incr t.c_bad_frames;
                          Obs.Metrics.incr m_bad_frames;
                          err Wire.Bad_request "%s" m
                      | Ok req -> handle_request t req
                    in
                    Net_io.write_all fd (Wire.encode_response resp);
                    loop ()))
    in
    loop ()
  with Unix.Unix_error _ -> () (* peer vanished mid-frame *)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

let run t =
  (* a peer that disappears between our read and write must surface as
     EPIPE on the write, not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept t.sock with
      | fd, _ ->
          Atomic.incr t.c_connections;
          Obs.Metrics.incr m_connections;
          ignore (Thread.create (fun () -> handle_conn t fd) ());
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ when Atomic.get t.stopping ->
          (* {!stop} closed the listener under us *)
          ()
  in
  loop ();
  Pool.shutdown t.pool

let start t = Thread.create run t
