(* The verification daemon.

   Thread/domain layout: the accept loop and one system thread per
   connection do only IO and framing; every prove/verify/forge lands
   on the shared {!Pool} of worker domains, so CPU concurrency is
   bounded by [jobs] no matter how many clients connect. A connection
   thread parks on a one-shot cell (mutex + condition) until its
   worker delivers the response.

   Load shedding: the pool submit is {!Pool.submit_opt} with the
   configured [max_queue] bound — when the backlog is full the request
   is answered [Overloaded] immediately instead of growing an
   unbounded queue. Deadlines are checked at the points where the
   request's fate is decided (dequeue and completion); a request that
   missed its deadline gets a typed [Deadline_exceeded] error, never a
   silently late answer or a hung connection.

   The compiled-verifier cache maps (scheme name, MD5 of the graph6
   payload) to the {!Simulator.compiled} CSR image. The graph6 string
   of a decoded graph is unique per labelled graph, so the digest is a
   canonical hash of exactly what verification consumes; a hit skips
   both the O(n^2) graph6 decode and the compile. Two workers missing
   on the same key may compile twice — harmless, the second insert
   wins — and the cache is serialised by one mutex held only around
   table operations, never around a compile.

   Telemetry: every request carries a correlation id — the client's
   own (protocol v2) or one the server allocates — stamped on the
   [server.request] / [server.queue_wait] / [server.compute] trace
   spans, the structured log line and the client's response, so one
   request can be followed across the connection thread and the
   worker domain. Rolling windows (always on, like the atomics — the
   per-request mutex is noise next to a verification round trip) feed
   the Prometheus exposition served both as a {!Wire.Metrics_text}
   reply and over the plain-HTTP sidecar. *)

let m_requests = Obs.Metrics.counter "server.requests"
let m_req_prove = Obs.Metrics.counter "server.req_prove"
let m_req_verify = Obs.Metrics.counter "server.req_verify"
let m_req_forge = Obs.Metrics.counter "server.req_forge"
let m_req_batch = Obs.Metrics.counter "server.req_batch"
let m_req_sampled = Obs.Metrics.counter "server.req_sampled"
let m_batch_ops = Obs.Metrics.counter "server.batch_ops"
let m_batch_coalesced = Obs.Metrics.counter "server.batch_ops_coalesced"
let m_req_stats = Obs.Metrics.counter "server.req_stats"
let m_req_catalog = Obs.Metrics.counter "server.req_catalog"
let m_req_telemetry = Obs.Metrics.counter "server.req_telemetry"
let m_cache_hits = Obs.Metrics.counter "server.cache_hits"
let m_cache_misses = Obs.Metrics.counter "server.cache_misses"
let m_disk_hits = Obs.Metrics.counter "server.disk_cache_hits"
let m_overloaded = Obs.Metrics.counter "server.overloaded"
let m_unavailable = Obs.Metrics.counter "server.unavailable"
let m_deadline = Obs.Metrics.counter "server.deadline_exceeded"
let m_bad_frames = Obs.Metrics.counter "server.bad_frames"
let m_connections = Obs.Metrics.counter "server.connections"
let m_request_us = Obs.Metrics.histogram "server.request_us"
let m_queue_wait_us = Obs.Metrics.histogram "server.queue_wait_us"
let m_slow = Obs.Metrics.counter "server.slow_requests"

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port}. *)
  jobs : int;
  cache_size : int;
  deadline_ms : int;  (** <= 0 disables deadlines. *)
  max_queue : int;
  http_port : int;  (** < 0 disables the sidecar; 0 picks a port. *)
  slow_ms : int;  (** <= 0 disables the slow-request recorder. *)
  slow_dir : string;  (** Where [slow-<id>.json] trace slices land. *)
  cache_dir : string;  (** "" disables the persistent compiled cache. *)
  log : Obs.Log.t option;  (** Structured per-request log sink. *)
  trace_sample : int;
      (** Head-based trace sampling: 1-in-N rids get a trace identity
          when no upstream context arrived (<= 0 disables; a wire
          trace context always wins). Deterministic per rid, so every
          process of the cluster agrees — see {!Obs.Trace.sample}. *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7411;
    jobs = 1;
    cache_size = 128;
    deadline_ms = 0;
    max_queue = 256;
    http_port = -1;
    slow_ms = 0;
    slow_dir = ".";
    cache_dir = "";
    log = None;
    trace_sample = 0;
  }

(* Auxiliary counter slots in the rolling latency window. *)
let w_requests = 0

let w_errors = 1
let w_hits = 2
let w_misses = 3
let w_ops = 4  (* batch sub-ops count as ops; a plain request is 1 op *)
let w_counters = 5

type t = {
  config : config;
  sock : Unix.file_descr;
  actual_port : int;
  http_sock : Unix.file_descr option;
  actual_http_port : int;
  pool : Pool.t;
  cache : Simulator.compiled Lru.t;
  cache_lock : Mutex.t;
  started_ns : int;
  stopping : bool Atomic.t;
  draining : bool Atomic.t;
  rid : int Atomic.t;  (* next server-assigned correlation id *)
  window : Obs.Window.t;  (* latency µs + the w_* counters above *)
  c_requests : int Atomic.t;
  c_batch_ops : int Atomic.t;
  c_disk_hits : int Atomic.t;
  c_compile_misses : int Atomic.t;  (* every tier missed: had to compile *)
  c_overloaded : int Atomic.t;
  c_unavailable : int Atomic.t;
  c_deadline : int Atomic.t;
  c_bad_frames : int Atomic.t;
  c_connections : int Atomic.t;
  c_slow : int Atomic.t;
  (* always-on partition-traffic counters (like the diskcache trio):
     dashboards must see shard flow even with the registry off *)
  c_partition_shards : int Atomic.t;
  c_partition_reject : int Atomic.t;
  (* always-on sampled-verification counters: the serving fast path's
     escalation rate is an SLO input, not optional telemetry *)
  c_sampled_requests : int Atomic.t;
  c_sampled_escalations : int Atomic.t;
  c_sampled_bits : int Atomic.t;
}

type stats = {
  requests : int;
  batch_ops : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  disk_hits : int;
  overloaded : int;
  unavailable : int;
  deadline_exceeded : int;
  bad_frames : int;
  connections : int;
  slow_requests : int;
  partition_shards : int;
  partition_reject : int;
  sampled_requests : int;
  sampled_escalations : int;
  sampled_bits_read : int;
}

let listen_on host port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let actual =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (sock, actual)

let create config =
  if config.jobs < 1 then invalid_arg "Server.create: jobs < 1";
  if config.max_queue < 0 then invalid_arg "Server.create: max_queue < 0";
  (* the slow-request recorder writes its first slice mid-request;
     create the sink directory now so a fresh deployment cannot lose
     the very slice that would explain its first slow request *)
  if config.slow_ms > 0 && config.slow_dir <> "" then
    Obs.Trace.mkdir_p config.slow_dir;
  let sock, actual_port = listen_on config.host config.port in
  let http_sock, actual_http_port =
    if config.http_port < 0 then (None, -1)
    else
      match listen_on config.host config.http_port with
      | s, p -> (Some s, p)
      | exception e ->
          (try Unix.close sock with _ -> ());
          raise e
  in
  let pool = Pool.create config.jobs in
  (* the pool's workers may be recording from now until {!run}
     returns, so a [Metrics.reset] in between would corrupt shards —
     make it a typed error instead (released after the pool join) *)
  Obs.Metrics.guard_reset "the server's worker pool is live";
  {
    config;
    sock;
    actual_port;
    http_sock;
    actual_http_port;
    pool;
    cache = Lru.create ~capacity:(max 0 config.cache_size);
    cache_lock = Mutex.create ();
    started_ns = Obs.Clock.now_ns ();
    stopping = Atomic.make false;
    draining = Atomic.make false;
    rid = Atomic.make 1;
    window = Obs.Window.create ~horizon:60 ~counters:w_counters ();
    c_requests = Atomic.make 0;
    c_batch_ops = Atomic.make 0;
    c_disk_hits = Atomic.make 0;
    c_compile_misses = Atomic.make 0;
    c_overloaded = Atomic.make 0;
    c_unavailable = Atomic.make 0;
    c_deadline = Atomic.make 0;
    c_bad_frames = Atomic.make 0;
    c_connections = Atomic.make 0;
    c_slow = Atomic.make 0;
    c_partition_shards = Atomic.make 0;
    c_partition_reject = Atomic.make 0;
    c_sampled_requests = Atomic.make 0;
    c_sampled_escalations = Atomic.make 0;
    c_sampled_bits = Atomic.make 0;
  }

let port t = t.actual_port
let http_port t = t.actual_http_port

let stats t =
  Mutex.lock t.cache_lock;
  let cache_hits = Lru.hits t.cache in
  let cache_entries = Lru.length t.cache in
  Mutex.unlock t.cache_lock;
  let disk_hits = Atomic.get t.c_disk_hits in
  {
    requests = Atomic.get t.c_requests;
    batch_ops = Atomic.get t.c_batch_ops;
    (* a disk-tier load is a cache hit as far as clients care: the
       request skipped both the graph6 decode and the compile. A miss
       means every tier missed — the daemon actually compiled — so a
       warm restart reports hits with zero misses. *)
    cache_hits = cache_hits + disk_hits;
    cache_misses = Atomic.get t.c_compile_misses;
    cache_entries;
    disk_hits;
    overloaded = Atomic.get t.c_overloaded;
    unavailable = Atomic.get t.c_unavailable;
    deadline_exceeded = Atomic.get t.c_deadline;
    bad_frames = Atomic.get t.c_bad_frames;
    connections = Atomic.get t.c_connections;
    slow_requests = Atomic.get t.c_slow;
    partition_shards = Atomic.get t.c_partition_shards;
    partition_reject = Atomic.get t.c_partition_reject;
    sampled_requests = Atomic.get t.c_sampled_requests;
    sampled_escalations = Atomic.get t.c_sampled_escalations;
    sampled_bits_read = Atomic.get t.c_sampled_bits;
  }

let uptime_ms t = (Obs.Clock.now_ns () - t.started_ns) / 1_000_000

let draining t = Atomic.get t.draining

let set_draining t enable = Atomic.set t.draining enable

let health t =
  let pending = Pool.pending t.pool in
  {
    Wire.ready =
      (not (Atomic.get t.stopping))
      && (not (Atomic.get t.draining))
      && pending < t.config.max_queue;
    pending;
    max_queue = t.config.max_queue;
    uptime_ms = uptime_ms t;
  }

(* --- request context --------------------------------------------------- *)

(* One per request, threaded down to the worker so the log line, the
   windows and the trace spans all describe the same request. *)
type ctx = {
  id : int;  (* correlation id, client-chosen or server-assigned *)
  arrival_ns : int;
  trace : Obs.Trace.ctx;  (* the server.request span; null when unsampled *)
  mutable tparent : int;  (* span id children emitted right now nest under *)
  mutable cache : string;  (* "hit" | "miss" | "-" *)
  mutable queue_wait_ns : int;
  mutable compute_ns : int;
  mutable n_nodes : int;  (* -1 when the request never decoded a graph *)
}

let make_ctx t ~id ?wire_trace () =
  let id =
    if id <> 0 then id
    else
      (* skip 0, the "unassigned" sentinel, on wrap-around *)
      let rec fresh () =
        let v = Atomic.fetch_and_add t.rid 1 land max_int in
        if v = 0 then fresh () else v
      in
      fresh ()
  in
  (* an upstream-supplied context always wins (the head already made
     the sampling decision); otherwise this process is the trace head
     for its 1-in-N share of rids *)
  let trace =
    if not !Obs.Trace.enabled then Obs.Trace.null_ctx
    else
      match wire_trace with
      | Some { Wire.trace_hi; trace_lo; parent_span } ->
          {
            Obs.Trace.t_hi = trace_hi;
            t_lo = trace_lo;
            span = Obs.Trace.new_span_id ();
            parent = parent_span;
          }
      | None ->
          if Obs.Trace.sample ~every:t.config.trace_sample id then
            Obs.Trace.ctx_of_rid id
          else Obs.Trace.null_ctx
  in
  {
    id;
    arrival_ns = Obs.Clock.now_ns ();
    trace;
    tparent = trace.Obs.Trace.span;
    cache = "-";
    queue_wait_ns = 0;
    compute_ns = 0;
    n_nodes = -1;
  }

(* A child identity under whatever span the request is currently
   inside ([tparent] — server.request, or server.compute once the
   worker picked the request up). Null stays null: unsampled requests
   keep emitting identity-less spans exactly as before. *)
let child_trace ctx =
  if ctx.trace.Obs.Trace.span = 0 then Obs.Trace.null_ctx
  else
    {
      ctx.trace with
      Obs.Trace.span = Obs.Trace.new_span_id ();
      parent = ctx.tparent;
    }

(* --- one-shot response cells ------------------------------------------ *)

type cell = {
  cm : Mutex.t;
  cv : Condition.t;
  mutable value : Wire.response option;
}

let cell () = { cm = Mutex.create (); cv = Condition.create (); value = None }

let cell_put c v =
  Mutex.lock c.cm;
  c.value <- Some v;
  Condition.signal c.cv;
  Mutex.unlock c.cm

let cell_take c =
  Mutex.lock c.cm;
  while c.value = None do
    Condition.wait c.cv c.cm
  done;
  let v = Option.get c.value in
  Mutex.unlock c.cm;
  v

(* --- request handling ------------------------------------------------- *)

let err code fmt =
  Printf.ksprintf (fun message -> Wire.Error_reply { code; message }) fmt

let cache_key scheme graph6 =
  scheme ^ "/" ^ Digest.to_hex (Digest.string graph6)

(* Resolve the scheme, then the compiled image — memory tier (LRU),
   disk tier (mmap-validated image, when [cache_dir] is set), or by
   running [decode] + compiling — and hand both to [f]. A compile also
   warms the disk tier, so the image survives a restart. [identity] is
   the byte string that names the compiled artefact across all tiers:
   the raw graph6 payload for plain requests, graph6 + id table for
   partition shards (two shards with equal subgraphs but different id
   maps are different verification jobs and must not share images). *)
let with_compiled_gen t ctx ~scheme ~identity ~decode f =
  match Registry.find scheme with
  | None -> err Wire.Unknown_scheme "unknown scheme %S" scheme
  | Some entry -> (
      let graph6 = identity in
      let key = cache_key scheme graph6 in
      Mutex.lock t.cache_lock;
      let cached = Lru.find t.cache key in
      Mutex.unlock t.cache_lock;
      match cached with
      | Some compiled ->
          ctx.cache <- "hit";
          ctx.n_nodes <- Instance.n (Simulator.compiled_instance compiled);
          Obs.Metrics.incr m_cache_hits;
          f entry compiled
      | None -> (
          let disk =
            if t.config.cache_dir = "" then None
            else if !Obs.Trace.enabled then
              Obs.Trace.span_ctx "server.cache_load" "rid" ctx.id
                (child_trace ctx) (fun () ->
                  Diskcache.load ~dir:t.config.cache_dir ~key ~scheme ~graph6)
            else Diskcache.load ~dir:t.config.cache_dir ~key ~scheme ~graph6
          in
          match disk with
          | Some compiled ->
              ctx.cache <- "disk";
              ctx.n_nodes <- Instance.n (Simulator.compiled_instance compiled);
              Atomic.incr t.c_disk_hits;
              Obs.Metrics.incr m_disk_hits;
              Mutex.lock t.cache_lock;
              Lru.put t.cache key compiled;
              Mutex.unlock t.cache_lock;
              f entry compiled
          | None -> (
              ctx.cache <- "miss";
              Atomic.incr t.c_compile_misses;
              Obs.Metrics.incr m_cache_misses;
              match decode () with
              | Error m -> err Wire.Bad_graph "%s" m
              | Ok inst ->
                  let compiled =
                    if !Obs.Trace.enabled then
                      Obs.Trace.span_ctx "server.compile" "rid" ctx.id
                        (child_trace ctx) (fun () -> Simulator.compile inst)
                    else Simulator.compile inst
                  in
                  ctx.n_nodes <-
                    Instance.n (Simulator.compiled_instance compiled);
                  Mutex.lock t.cache_lock;
                  Lru.put t.cache key compiled;
                  Mutex.unlock t.cache_lock;
                  if t.config.cache_dir <> "" then
                    Diskcache.store ~dir:t.config.cache_dir ~key ~scheme ~graph6
                      compiled;
                  f entry compiled)))

let with_compiled t ctx ~scheme ~graph6 f =
  with_compiled_gen t ctx ~scheme ~identity:graph6
    ~decode:(fun () ->
      Result.map Instance.of_graph (Graph6.decode_res graph6))
    f

(* The cache identity of a shard: its graph6 bytes plus the local→
   original id table. '\n' never occurs in graph6 (printable columns
   63..126 only), so the concatenation cannot collide with a plain
   graph, and distinct id tables yield distinct identities. *)
let shard_identity graph6 ids =
  let b = Buffer.create (String.length graph6 + (4 * Array.length ids)) in
  Buffer.add_string b graph6;
  Array.iter (fun v -> Printf.bprintf b "\n%x" v) ids;
  Buffer.contents b

(* Decode a shard into an instance on original identifiers: the local
   graph (ids 0..ns-1) relabelled through the id table. The wire layer
   already guarantees the table is strictly increasing, so the
   relabelling is injective. *)
let shard_instance ~graph6 ~ids () =
  match Graph6.decode_res graph6 with
  | Error _ as e -> e
  | Ok g ->
      if Graph.n g <> Array.length ids then
        Error
          (Printf.sprintf "shard id table has %d entries for a %d-node graph"
             (Array.length ids) (Graph.n g))
      else Ok (Instance.of_graph (Graph.relabel g (fun i -> ids.(i))))

let deadline_error t stage =
  Atomic.incr t.c_deadline;
  Obs.Metrics.incr m_deadline;
  err Wire.Deadline_exceeded "%s after the %d ms deadline" stage
    t.config.deadline_ms

(* Per-worker-domain arena: each pool domain reuses one set of
   simulator buffers across every verification it runs, so a warm
   batch verify allocates no per-run scratch at all. *)
let arena_key = Domain.DLS.new_key Simulator.arena

(* One prove/verify/forge against the cache — the shared body of both
   the plain compute path and every batch sub-op. Runs on a worker
   domain. *)
let compute_one t ctx req =
  match req with
  | Wire.Prove { scheme; graph6 } ->
      with_compiled t ctx ~scheme ~graph6 (fun entry compiled ->
          Wire.Proved
            (entry.Registry.scheme.Scheme.prover
               (Simulator.compiled_instance compiled)))
  | Wire.Verify { scheme; graph6; proof } ->
      with_compiled t ctx ~scheme ~graph6 (fun entry compiled ->
          let scheme = entry.Registry.scheme in
          (* a malformed proof string means "reject here", exactly
             as in [Scheme.decide] — it must not escape as an
             exception *)
          let verifier view =
            try scheme.Scheme.verifier view
            with Bits.Reader.Decode_error _ -> false
          in
          let verdicts, _ =
            Simulator.run_verifier ~compiled
              ~arena:(Domain.DLS.get arena_key)
              (Simulator.compiled_instance compiled)
              proof ~radius:scheme.Scheme.radius verifier
          in
          let rejecting =
            List.filter_map
              (fun (v, ok) -> if ok then None else Some v)
              verdicts
          in
          Wire.Verified { accepted = rejecting = []; rejecting })
  | Wire.Forge { scheme; graph6; max_bits } ->
      if max_bits < 0 || max_bits > 64 then
        err Wire.Bad_request "max_bits %d outside [0, 64]" max_bits
      else
        with_compiled t ctx ~scheme ~graph6 (fun entry compiled ->
            match
              Adversary.forge entry.Registry.scheme
                (Simulator.compiled_instance compiled)
                ~max_bits
            with
            | Adversary.Fooled proof ->
                Wire.Forged
                  { fooled = Some proof; attempts = 0; best_rejections = 0 }
            | Adversary.Resisted { best_rejections; attempts } ->
                Wire.Forged { fooled = None; attempts; best_rejections })
  | Wire.Verify_partition
      { scheme; graph6; ids; owned; proof; radius; shard_index; shard_count = _ }
    ->
      with_compiled_gen t ctx ~scheme ~identity:(shard_identity graph6 ids)
        ~decode:(shard_instance ~graph6 ~ids)
        (fun entry compiled ->
          let scheme_v = entry.Registry.scheme in
          let ns = Array.length ids in
          if radius <> scheme_v.Scheme.radius then
            err Wire.Bad_request
              "shard cut for radius %d, but scheme %S verifies at radius %d"
              radius scheme scheme_v.Scheme.radius
          else if Instance.n (Simulator.compiled_instance compiled) <> ns then
            (* a cache hit under the composite identity guarantees the
               image matches graph6 AND ids; sizes can only disagree if
               the identity string was forged — reject, don't crash *)
            err Wire.Bad_graph "shard graph does not match its id table"
          else if
            List.exists (fun (v, _) -> v < 0 || v >= ns) (Proof.bindings proof)
          then err Wire.Bad_request "proof references a node outside the shard"
          else begin
            Atomic.incr t.c_partition_shards;
            let proof =
              Proof.of_list
                (List.map (fun (v, b) -> (ids.(v), b)) (Proof.bindings proof))
            in
            let nodes =
              let out = ref [] in
              for i = ns - 1 downto 0 do
                if Bits.get owned i then out := ids.(i) :: !out
              done;
              Array.of_list !out
            in
            let verifier view =
              try scheme_v.Scheme.verifier view
              with Bits.Reader.Decode_error _ -> false
            in
            let verdicts =
              if !Obs.Trace.enabled then
                Obs.Trace.span_arg "server.shard" "shard" shard_index
                  (fun () ->
                    Simulator.run_verifier_on
                      ~arena:(Domain.DLS.get arena_key) compiled proof
                      ~radius:scheme_v.Scheme.radius ~nodes verifier)
              else
                Simulator.run_verifier_on
                  ~arena:(Domain.DLS.get arena_key) compiled proof
                  ~radius:scheme_v.Scheme.radius ~nodes verifier
            in
            let rejecting =
              List.filter_map (fun (v, ok) -> if ok then None else Some v)
                verdicts
            in
            let rejected = List.length rejecting in
            if rejected > 0 then
              ignore (Atomic.fetch_and_add t.c_partition_reject rejected);
            let rec take n = function
              | x :: tl when n > 0 -> x :: take (n - 1) tl
              | _ -> []
            in
            Wire.Partition_verified
              {
                all_accept = rejected = 0;
                owned = Array.length nodes;
                rejected;
                rejecting = take 64 rejecting;
              }
          end)
  | Wire.Verify_sampled { scheme; graph6; proof; seed; queries; budget_id } -> (
      (* budget pinning happens before any graph work: a client that
         believes in a different ε must learn so cheaply *)
      match Sampled.find scheme with
      | None ->
          if Registry.find scheme = None then
            err Wire.Unknown_scheme "unknown scheme %S" scheme
          else
            err Wire.Bad_request "scheme %S has no sampled variant" scheme
      | Some rs ->
          if budget_id <> "" && budget_id <> rs.Randomized_scheme.budget then
            err Wire.Bad_request
              "budget %S does not match the server's %S for scheme %S"
              budget_id rs.Randomized_scheme.budget scheme
          else
            with_compiled t ctx ~scheme ~graph6 (fun entry compiled ->
                Atomic.incr t.c_sampled_requests;
                (* the sampled probe pass on the arena fast path; a
                   [Qview.Budget_exceeded] is a scheme bug and lands
                   as [Internal] via the dispatch wrapper *)
                let outcome =
                  Randomized_scheme.run ~arena:(Domain.DLS.get arena_key) rs
                    compiled proof ~seed ~queries
                in
                ignore
                  (Atomic.fetch_and_add t.c_sampled_bits
                     outcome.Randomized_scheme.bits_read);
                if outcome.Randomized_scheme.accepted then
                  Wire.Sampled_verified
                    {
                      sampled_accept = true;
                      escalated = false;
                      accepted = true;
                      bits_read = outcome.Randomized_scheme.bits_read;
                      nodes = outcome.Randomized_scheme.nodes_checked;
                      rejecting = [];
                    }
                else begin
                  (* escalation: the sampled pass rejected, so the
                     final verdict comes from the full verifier — the
                     fast path can only ever be {e overruled towards}
                     acceptance, never away from it *)
                  Atomic.incr t.c_sampled_escalations;
                  let scheme_v = entry.Registry.scheme in
                  let verifier view =
                    try scheme_v.Scheme.verifier view
                    with Bits.Reader.Decode_error _ -> false
                  in
                  let verdicts, _ =
                    Simulator.run_verifier ~compiled
                      ~arena:(Domain.DLS.get arena_key)
                      (Simulator.compiled_instance compiled)
                      proof ~radius:scheme_v.Scheme.radius verifier
                  in
                  let rejecting =
                    List.filter_map
                      (fun (v, ok) -> if ok then None else Some v)
                      verdicts
                  in
                  let rec take n = function
                    | x :: tl when n > 0 -> x :: take (n - 1) tl
                    | _ -> []
                  in
                  Wire.Sampled_verified
                    {
                      sampled_accept = false;
                      escalated = true;
                      accepted = rejecting = [];
                      bits_read = outcome.Randomized_scheme.bits_read;
                      nodes = outcome.Randomized_scheme.nodes_checked;
                      rejecting = take 64 rejecting;
                    }
                end))
  | Wire.Batch _ | Wire.Stats | Wire.Catalog | Wire.Metrics_text | Wire.Health
  | Wire.Drain _ | Wire.Trace_export | Wire.Profile_export ->
      err Wire.Internal "request dispatched to a worker by mistake"

let item_of_response = function
  | Wire.Proved p -> Wire.Item_proved p
  | Wire.Verified { accepted; rejecting } ->
      Wire.Item_verified { accepted; rejecting }
  | Wire.Forged { fooled; attempts; best_rejections } ->
      Wire.Item_forged { fooled; attempts; best_rejections }
  | Wire.Error_reply { code; message } -> Wire.Item_error { code; message }
  | _ -> Wire.Item_error { code = Wire.Internal; message = "non-op response" }

(* A whole batch runs as one pool task: one queue round trip and one
   worker-domain arena for up to 65535 ops. Ops are evaluated in
   order; identical ops (same kind, scheme, graph bytes and proof —
   compared by their canonical encoding) are coalesced and computed
   once, which is where a replayed serving mix wins big. Each op is
   isolated: its failure lands in its own reply slot, and an op that
   starts past the deadline answers [Deadline_exceeded] in its slot
   without poisoning completed ones. *)
let compute_batch t ctx ~deadline ~graphs ~proofs ~ops =
  let graphs = Array.of_list graphs in
  let proofs = Array.of_list proofs in
  let memo = Hashtbl.create 16 in
  let deadline_hit = ref false in
  let items =
    List.mapi
      (fun op_idx op ->
        Atomic.incr t.c_batch_ops;
        Obs.Metrics.incr m_batch_ops;
        if !deadline_hit || Obs.Clock.now_ns () > deadline then begin
          if not !deadline_hit then begin
            deadline_hit := true;
            Atomic.incr t.c_deadline;
            Obs.Metrics.incr m_deadline
          end;
          Wire.Item_error
            {
              code = Wire.Deadline_exceeded;
              message =
                Printf.sprintf "op started after the %d ms deadline"
                  t.config.deadline_ms;
            }
        end
        else
          (* the op value is the memo key: an op is a few words of
             plain data (scheme string + table indices), so hashing
             and comparing it costs nothing — repeated ops coalesce
             to one execution per distinct op *)
          match Hashtbl.find_opt memo op with
          | Some item ->
              Obs.Metrics.incr m_batch_coalesced;
              (* memo hits are points, not spans: a traced --batch 64
                 frame shows exactly which ops coalesced and which
                 ones actually ran *)
              if !Obs.Trace.enabled then
                Obs.Trace.instant ~arg_name:"op" ~arg:op_idx
                  ~ctx:(child_trace ctx) "server.batch_memo";
              item
          | None ->
              let graph_idx =
                match op with
                | Wire.Op_prove { graph; _ }
                | Wire.Op_verify { graph; _ }
                | Wire.Op_forge { graph; _ } ->
                    graph
              in
              let item =
                if graph_idx < 0 || graph_idx >= Array.length graphs then
                  Wire.Item_error
                    {
                      code = Wire.Bad_request;
                      message =
                        Printf.sprintf "graph index %d out of range" graph_idx;
                    }
                else
                  let graph6 = graphs.(graph_idx) in
                  let req =
                    match op with
                    | Wire.Op_prove { scheme; _ } ->
                        Some (Wire.Prove { scheme; graph6 })
                    | Wire.Op_verify { scheme; proof; _ } ->
                        if proof < 0 || proof >= Array.length proofs then None
                        else
                          Some
                            (Wire.Verify
                               { scheme; graph6; proof = proofs.(proof) })
                    | Wire.Op_forge { scheme; max_bits; _ } ->
                        Some (Wire.Forge { scheme; graph6; max_bits })
                  in
                  match req with
                  | None ->
                      Wire.Item_error
                        {
                          code = Wire.Bad_request;
                          message = "proof index out of range";
                        }
                  | Some req ->
                      let run () =
                        item_of_response
                          (try compute_one t ctx req
                           with e ->
                             err Wire.Internal "%s" (Printexc.to_string e))
                      in
                      if !Obs.Trace.enabled then begin
                        (* a real (uncoalesced) op gets its own span,
                           and becomes the parent of any cache_load /
                           compile it triggers *)
                        let c = child_trace ctx in
                        let saved = ctx.tparent in
                        if c.Obs.Trace.span <> 0 then
                          ctx.tparent <- c.Obs.Trace.span;
                        let item =
                          Obs.Trace.span_ctx "server.batch_op" "op" op_idx c run
                        in
                        ctx.tparent <- saved;
                        item
                      end
                      else run ()
              in
              Hashtbl.replace memo op item;
              item)
      ops
  in
  Wire.Batch_reply items

let request_kind = function
  | Wire.Prove _ -> "prove"
  | Wire.Verify _ -> "verify"
  | Wire.Forge _ -> "forge"
  | Wire.Batch _ -> "batch"
  | Wire.Verify_partition _ -> "verify_partition"
  | Wire.Verify_sampled _ -> "verify_sampled"
  | Wire.Stats -> "stats"
  | Wire.Catalog -> "catalog"
  | Wire.Metrics_text -> "metrics"
  | Wire.Health -> "health"
  | Wire.Drain _ -> "drain"
  | Wire.Trace_export -> "trace"
  | Wire.Profile_export -> "profile"

let request_scheme = function
  | Wire.Prove { scheme; _ }
  | Wire.Verify { scheme; _ }
  | Wire.Forge { scheme; _ }
  | Wire.Verify_partition { scheme; _ }
  | Wire.Verify_sampled { scheme; _ } ->
      scheme
  | Wire.Batch { ops; _ } -> (
      (* batches are routed by their first op's scheme; mixed-scheme
         batches log the same way *)
      match ops with
      | Wire.Op_prove { scheme; _ } :: _
      | Wire.Op_verify { scheme; _ } :: _
      | Wire.Op_forge { scheme; _ } :: _ ->
          scheme
      | [] -> "-")
  | Wire.Stats | Wire.Catalog | Wire.Metrics_text | Wire.Health
  | Wire.Drain _ | Wire.Trace_export | Wire.Profile_export ->
      "-"

(* Runs on a worker domain. The deadline is measured from the
   request's arrival on the connection thread, so queue wait counts
   against it. *)
let compute t ctx req =
  let dequeue_ns = Obs.Clock.now_ns () in
  ctx.queue_wait_ns <- dequeue_ns - ctx.arrival_ns;
  if !Obs.Trace.enabled then
    Obs.Trace.complete ~arg_name:"rid" ~arg:ctx.id ~ctx:(child_trace ctx)
      "server.queue_wait" ~t0_ns:ctx.arrival_ns ~dur_ns:ctx.queue_wait_ns;
  if !Obs.Metrics.enabled then
    Obs.Metrics.observe m_queue_wait_us (ctx.queue_wait_ns / 1_000);
  let deadline =
    if t.config.deadline_ms <= 0 then max_int
    else ctx.arrival_ns + (t.config.deadline_ms * 1_000_000)
  in
  if dequeue_ns > deadline then deadline_error t "dequeued"
  else begin
    let body () =
      match req with
      | Wire.Batch { graphs; proofs; ops } ->
          compute_batch t ctx ~deadline ~graphs ~proofs ~ops
      | req -> compute_one t ctx req
    in
    let run () =
      if !Obs.Trace.enabled then begin
        let c = child_trace ctx in
        let saved = ctx.tparent in
        if c.Obs.Trace.span <> 0 then ctx.tparent <- c.Obs.Trace.span;
        let resp = Obs.Trace.span_ctx "server.compute" "rid" ctx.id c body in
        ctx.tparent <- saved;
        resp
      end
      else body ()
    in
    let resp =
      (* per-scheme cost accounting: this closure owns the worker
         domain, so Gc.allocated_bytes bracketing is exact for the
         request (plus the span-emit noise, which is constant) *)
      if !Obs.Profile.enabled then begin
        let p0 = Obs.Clock.now_ns () in
        let a0 = Gc.allocated_bytes () in
        let resp = run () in
        Obs.Profile.account ~scheme:(request_scheme req)
          ~cpu_ns:(Obs.Clock.now_ns () - p0)
          ~alloc_bytes:(Gc.allocated_bytes () -. a0);
        resp
      end
      else run ()
    in
    ctx.compute_ns <- Obs.Clock.now_ns () - dequeue_ns;
    if Obs.Clock.now_ns () > deadline then
      (* a finished batch keeps its per-op verdicts: the late ops
         already answered [Deadline_exceeded] in their own slots *)
      match resp with
      | Wire.Batch_reply _ -> resp
      | _ -> deadline_error t "completed"
    else resp
  end

let dispatch t ctx req =
  let c = cell () in
  let task () =
    let resp =
      try compute t ctx req
      with e -> err Wire.Internal "%s" (Printexc.to_string e)
    in
    cell_put c resp
  in
  match Pool.submit_res ~max_pending:t.config.max_queue t.pool task with
  | Ok () -> cell_take c
  | Error Pool.Queue_full ->
      Atomic.incr t.c_overloaded;
      Obs.Metrics.incr m_overloaded;
      err Wire.Overloaded "backlog full (%d tasks pending)" t.config.max_queue
  | Error Pool.Shutting_down ->
      Atomic.incr t.c_unavailable;
      Obs.Metrics.incr m_unavailable;
      err Wire.Unavailable "worker pool is shutting down"

let stats_reply t =
  let s = stats t in
  Wire.Stats_reply
    {
      Wire.requests = s.requests;
      cache_hits = s.cache_hits;
      cache_misses = s.cache_misses;
      cache_entries = s.cache_entries;
      overloaded = s.overloaded;
      deadline_exceeded = s.deadline_exceeded;
      uptime_ms = uptime_ms t;
      metrics_json =
        (if !Obs.Metrics.enabled then
           Obs.Metrics.to_json (Obs.Metrics.snapshot ())
         else "{}");
    }

let catalog_reply () =
  Wire.Catalog_reply
    (List.map
       (fun e ->
         {
           Wire.name = e.Registry.name;
           radius = e.Registry.scheme.Scheme.radius;
           doc = e.Registry.doc;
         })
       Registry.all)

(* --- exposition -------------------------------------------------------- *)

let hit_ratio hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

(* The always-on service view (cumulative counters, rolling windows,
   readiness) plus — when the registry is enabled — the full engine
   metrics snapshot. One renderer feeds both the [Metrics_text] wire
   reply and the HTTP sidecar's [/metrics]. *)
let metrics_text t =
  let e = Obs.Export.create () in
  let s = stats t in
  Obs.Export.counter e ~help:"Requests received" "server.requests" s.requests;
  Obs.Export.counter e ~help:"Batch sub-operations processed"
    "server.batch_ops" s.batch_ops;
  Obs.Export.counter e ~help:"Requests shed by backpressure"
    "server.overloaded" s.overloaded;
  Obs.Export.counter e ~help:"Requests refused during shutdown"
    "server.unavailable" s.unavailable;
  Obs.Export.counter e ~help:"Requests past their deadline"
    "server.deadline_exceeded" s.deadline_exceeded;
  Obs.Export.counter e ~help:"Unparseable frames" "server.bad_frames"
    s.bad_frames;
  Obs.Export.counter e ~help:"Connections accepted" "server.connections"
    s.connections;
  Obs.Export.counter e ~help:"Requests over the slow threshold"
    "server.slow_requests" s.slow_requests;
  Obs.Export.counter e ~help:"Compiled-verifier cache hits"
    "server.cache_hits" s.cache_hits;
  Obs.Export.counter e ~help:"Compiled-verifier cache misses"
    "server.cache_misses" s.cache_misses;
  Obs.Export.counter e ~help:"Compiled images served from the disk cache"
    "server.disk_cache_hits" s.disk_hits;
  Obs.Export.counter e ~help:"Partition shards verified"
    "partition.shards" s.partition_shards;
  Obs.Export.counter e ~help:"Rejecting owned nodes across partition shards"
    "partition.reject" s.partition_reject;
  Obs.Export.counter e ~help:"Sampled-verification requests served"
    "sampled.requests" s.sampled_requests;
  Obs.Export.counter e
    ~help:"Sampled rejections escalated to a full verification"
    "sampled.escalations" s.sampled_escalations;
  Obs.Export.counter e
    ~help:"Proof and label bits consumed by sampled verification runs"
    "sampled.bits_read" s.sampled_bits_read;
  List.iter
    (fun (name, rs) ->
      Obs.Export.gauge e
        ~labels:[ ("scheme", name) ]
        ~help:"Declared one-sided error budget of the sampled variant"
        "sampled.error_budget" rs.Randomized_scheme.epsilon)
    Sampled.all;
  let dc = Diskcache.counts () in
  Obs.Export.counter e ~help:"Disk-cache images loaded and validated"
    "diskcache.hits" dc.Diskcache.hits;
  Obs.Export.counter e ~help:"Disk-cache lookups with no image on disk"
    "diskcache.misses" dc.Diskcache.misses;
  Obs.Export.counter e
    ~help:"Disk-cache images rejected by validation (checksum, identity)"
    "diskcache.invalid" dc.Diskcache.invalid;
  Obs.Export.gauge e ~help:"Compiled verifiers resident"
    "server.cache_entries"
    (float_of_int s.cache_entries);
  Obs.Export.gauge e ~help:"Seconds since the server started"
    "server.uptime_seconds"
    (float_of_int (uptime_ms t) /. 1000.0);
  let h = health t in
  Obs.Export.gauge e ~help:"Pool tasks queued or running"
    "server.pool_pending"
    (float_of_int h.Wire.pending);
  Obs.Export.gauge e ~help:"Queue bound before shedding" "server.max_queue"
    (float_of_int h.Wire.max_queue);
  Obs.Export.gauge e ~help:"1 when the next request would be accepted"
    "server.ready"
    (if h.Wire.ready then 1.0 else 0.0);
  List.iter
    (fun seconds ->
      let w = Obs.Window.stats ~seconds t.window in
      let labels = [ ("window", string_of_int w.Obs.Window.seconds ^ "s") ] in
      Obs.Export.window_summary e
        ~help:"Request latency in microseconds, rolling window"
        "server.request_us" w;
      Obs.Export.gauge e ~labels ~help:"Requests per second, rolling window"
        "server.request_rate" w.Obs.Window.rate;
      (* frames/s is request_rate; ops/s counts batch sub-ops, so the
         two diverge exactly when batching is doing its job *)
      Obs.Export.gauge e ~labels
        ~help:"Operations per second (batch sub-ops counted singly)"
        "server.op_rate"
        (float_of_int w.Obs.Window.counters.(w_ops)
        /. float_of_int w.Obs.Window.seconds);
      Obs.Export.gauge e ~labels ~help:"Error responses per second"
        "server.error_rate"
        (float_of_int w.Obs.Window.counters.(w_errors)
        /. float_of_int w.Obs.Window.seconds);
      Obs.Export.gauge e ~labels
        ~help:"Compiled-verifier cache hit ratio, rolling window"
        "server.cache_hit_ratio"
        (hit_ratio
           w.Obs.Window.counters.(w_hits)
           w.Obs.Window.counters.(w_misses)))
    [ 1; 10; 60 ];
  (* GC/runtime telemetry and the profiler's families: live
     quick_stat values plus sampler counters and per-scheme costs *)
  Obs.Profile.exposition e;
  if !Obs.Metrics.enabled then
    Obs.Export.metrics_snapshot e (Obs.Metrics.snapshot ());
  Obs.Export.contents e

let metrics_json t =
  let s = stats t in
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  Printf.bprintf b
    "\"server\":{\"requests\":%d,\"batch_ops\":%d,\"overloaded\":%d,\
     \"unavailable\":%d,\"deadline_exceeded\":%d,\
     \"bad_frames\":%d,\"connections\":%d,\"slow_requests\":%d,\
     \"cache_hits\":%d,\"cache_misses\":%d,\"cache_entries\":%d,\
     \"disk_hits\":%d,\"uptime_ms\":%d}"
    s.requests s.batch_ops s.overloaded s.unavailable s.deadline_exceeded
    s.bad_frames s.connections s.slow_requests s.cache_hits s.cache_misses
    s.cache_entries s.disk_hits (uptime_ms t);
  let h = health t in
  Printf.bprintf b
    ",\"health\":{\"ready\":%b,\"pending\":%d,\"max_queue\":%d}"
    h.Wire.ready h.Wire.pending h.Wire.max_queue;
  Buffer.add_string b ",\"windows\":{";
  List.iteri
    (fun i seconds ->
      if i > 0 then Buffer.add_char b ',';
      let w = Obs.Window.stats ~seconds t.window in
      Printf.bprintf b
        "\"%ds\":{\"count\":%d,\"rate\":%g,\"p50_us\":%d,\"p95_us\":%d,\
         \"p99_us\":%d,\"max_us\":%d,\"errors\":%d,\"cache_hits\":%d,\
         \"cache_misses\":%d}"
        w.Obs.Window.seconds w.Obs.Window.count w.Obs.Window.rate
        w.Obs.Window.p50 w.Obs.Window.p95 w.Obs.Window.p99 w.Obs.Window.max
        w.Obs.Window.counters.(w_errors)
        w.Obs.Window.counters.(w_hits)
        w.Obs.Window.counters.(w_misses))
    [ 1; 10; 60 ];
  Buffer.add_char b '}';
  Printf.bprintf b ",\"metrics\":%s"
    (if !Obs.Metrics.enabled then Obs.Metrics.to_json (Obs.Metrics.snapshot ())
     else "{}");
  Buffer.add_char b '}';
  Buffer.contents b

(* --- per-request telemetry -------------------------------------------- *)

let outcome_of = function
  | Wire.Error_reply { code; _ } -> Wire.error_code_to_string code
  | _ -> "ok"

(* Everything that happens after the response is known: windows,
   latency histogram, the structured log line and the slow-request
   flight recorder. Runs on the connection thread. *)
let finish_request t ctx req resp =
  let done_ns = Obs.Clock.now_ns () in
  let latency_ns = done_ns - ctx.arrival_ns in
  let latency_us = latency_ns / 1_000 in
  let outcome = outcome_of resp in
  Obs.Window.observe t.window latency_us;
  Obs.Window.incr t.window w_requests;
  Obs.Window.add t.window w_ops
    (match req with Wire.Batch { ops; _ } -> List.length ops | _ -> 1);
  if outcome <> "ok" then Obs.Window.incr t.window w_errors;
  (match ctx.cache with
  | "hit" | "disk" -> Obs.Window.incr t.window w_hits
  | "miss" -> Obs.Window.incr t.window w_misses
  | _ -> ());
  if !Obs.Metrics.enabled then Obs.Metrics.observe m_request_us latency_us;
  let slow =
    t.config.slow_ms > 0 && latency_ns >= t.config.slow_ms * 1_000_000
  in
  (match t.config.log with
  | None -> ()
  | Some log ->
      let fields =
        [
          ("rid", Obs.Log.Int ctx.id);
          ("rid_hex", Obs.Log.Str (Printf.sprintf "%x" ctx.id));
          ("req", Obs.Log.Str (request_kind req));
          ("scheme", Obs.Log.Str (request_scheme req));
          ("n", Obs.Log.Int ctx.n_nodes);
          ("cache", Obs.Log.Str ctx.cache);
          ("queue_wait_ns", Obs.Log.Int ctx.queue_wait_ns);
          ("compute_ns", Obs.Log.Int ctx.compute_ns);
          ("latency_us", Obs.Log.Int latency_us);
          ("outcome", Obs.Log.Str outcome);
        ]
      in
      (* exemplar: a slow line names its trace so the operator can jump
         from the log straight to the merged timeline *)
      let fields =
        if slow && ctx.trace.Obs.Trace.span <> 0 then
          fields
          @ [
              ( "trace",
                Obs.Log.Str
                  (Obs.Trace.hex_id ctx.trace.Obs.Trace.t_hi
                     ctx.trace.Obs.Trace.t_lo) );
            ]
        else fields
      in
      ignore (Obs.Log.write log fields));
  if slow then begin
    Atomic.incr t.c_slow;
    Obs.Metrics.incr m_slow;
    Obs.Trace.instant ~arg_name:"rid" ~arg:ctx.id ~ctx:(child_trace ctx)
      "server.slow_request";
    if !Obs.Trace.enabled then begin
      let path =
        Filename.concat t.config.slow_dir
          (Printf.sprintf "slow-%d.json" ctx.id)
      in
      try
        Obs.Trace.export_slice path ~since_ns:ctx.arrival_ns ~until_ns:done_ns
      with Sys_error _ -> () (* a bad slow_dir must not kill the request *)
    end
  end

let handle_request t ctx req =
  Atomic.incr t.c_requests;
  Obs.Metrics.incr m_requests;
  Obs.Metrics.incr
    (match req with
    | Wire.Prove _ -> m_req_prove
    | Wire.Verify _ | Wire.Verify_partition _ -> m_req_verify
    | Wire.Verify_sampled _ -> m_req_sampled
    | Wire.Forge _ -> m_req_forge
    | Wire.Batch _ -> m_req_batch
    | Wire.Stats -> m_req_stats
    | Wire.Catalog -> m_req_catalog
    | Wire.Metrics_text | Wire.Health | Wire.Drain _ | Wire.Trace_export
    | Wire.Profile_export ->
        m_req_telemetry);
  let body () =
    match req with
    | Wire.Stats -> stats_reply t
    | Wire.Catalog -> catalog_reply ()
    | Wire.Metrics_text -> Wire.Metrics_text_reply (metrics_text t)
    | Wire.Health -> Wire.Health_reply (health t)
    | Wire.Trace_export ->
        (* answered inline like Metrics_text: exporting must work even
           when the pool is saturated — that is when you want traces *)
        Wire.Trace_export_reply
          (if !Obs.Trace.enabled then Obs.Trace.export_string ()
           else "{\"traceEvents\":[],\"dropped\":0}")
    | Wire.Profile_export ->
        (* inline for the same reason as Trace_export: a saturated
           pool is exactly when the profile is wanted *)
        Wire.Profile_export_reply (Obs.Profile.export_string ())
    | Wire.Drain { enable } ->
        (* graceful drain: keep serving everything, but report
           not-ready so a routing frontend stops sending new work *)
        set_draining t enable;
        Wire.Drain_reply { draining = enable; pending = Pool.pending t.pool }
    | _ -> dispatch t ctx req
  in
  let resp =
    if !Obs.Trace.enabled then
      Obs.Trace.span_ctx "server.request" "rid" ctx.id ctx.trace body
    else body ()
  in
  finish_request t ctx req resp;
  resp

(* --- connections ------------------------------------------------------ *)

let bad_frame t raw message =
  Atomic.incr t.c_bad_frames;
  Obs.Metrics.incr m_bad_frames;
  let code =
    (* a correct magic with a version outside our range deserves the
       typed answer; anything else is noise on the port *)
    if
      String.length raw >= 3
      && raw.[0] = 'L'
      && raw.[1] = 'C'
      && (Char.code raw.[2] < Wire.min_protocol_version
         || Char.code raw.[2] > Wire.protocol_version)
    then Wire.Unsupported_version
    else Wire.Bad_frame
  in
  Wire.Error_reply { code; message }

let handle_conn t fd =
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  try
    let rec loop () =
      if not (Atomic.get t.stopping) then
        match Net_io.read_exact fd Wire.header_bytes with
        | None -> ()
        | Some raw -> (
            match Wire.decode_header_err raw with
            | Error (Wire.Bad_header m) ->
                (* framing lost: answer once, then drop the link *)
                Net_io.write_all fd (Wire.encode_response (bad_frame t raw m))
            | Error (Wire.Oversized { version; tag = _; length }) ->
                (* the length field is trustworthy: drain the payload,
                   answer a typed error naming the offending size, and
                   keep the connection — an oversized shard must not
                   kill its siblings multiplexed on the same link *)
                Atomic.incr t.c_bad_frames;
                Obs.Metrics.incr m_bad_frames;
                if Net_io.skip_exact fd length then begin
                  Net_io.write_all fd
                    (Wire.encode_response ~version
                       (err Wire.Bad_request
                          "payload of %d bytes exceeds the %d byte cap" length
                          Wire.max_payload));
                  loop ()
                end
            | Ok { Wire.version; tag; length } -> (
                match Net_io.read_exact fd length with
                | None -> ()
                | Some payload ->
                    (* the reply speaks the request's version, echoes
                       its id (v1: no id on the wire) and its trace
                       context, so the caller can pair the response
                       with the trace it started *)
                    let id, trace, resp =
                      match
                        Wire.decode_request_payload ~version ~tag payload
                      with
                      | Error m ->
                          Atomic.incr t.c_bad_frames;
                          Obs.Metrics.incr m_bad_frames;
                          (0, None, err Wire.Bad_request "%s" m)
                      | Ok (id, wire_trace, req) ->
                          let ctx = make_ctx t ~id ?wire_trace () in
                          (ctx.id, wire_trace, handle_request t ctx req)
                    in
                    Net_io.write_all fd
                      (Wire.encode_response ~version ~id ?trace resp);
                    loop ()))
    in
    loop ()
  with Unix.Unix_error _ -> () (* peer vanished mid-frame *)

(* --- HTTP sidecar ----------------------------------------------------- *)

let http_reply t path =
  match path with
  | "/metrics" ->
      Http_sidecar.response ~status:"200 OK"
        ~content_type:Http_sidecar.prometheus_content_type (metrics_text t)
  | "/metrics.json" ->
      Http_sidecar.response ~status:"200 OK" ~content_type:"application/json"
        (metrics_json t)
  | "/healthz" ->
      Http_sidecar.response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
  | "/readyz" ->
      let h = health t in
      if h.Wire.ready then
        Http_sidecar.response ~status:"200 OK" ~content_type:"text/plain"
          "ready\n"
      else
        Http_sidecar.response ~status:"503 Service Unavailable"
          ~content_type:"text/plain"
          (Printf.sprintf "saturated: %d/%d tasks pending\n" h.Wire.pending
             h.Wire.max_queue)
  | _ -> Http_sidecar.not_found

let http_loop t sock =
  Http_sidecar.serve
    ~stopping:(fun () -> Atomic.get t.stopping)
    ~handler:(http_reply t) sock

(* --- lifecycle -------------------------------------------------------- *)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    match t.http_sock with
    | None -> ()
    | Some s ->
        (try Unix.shutdown s Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        (try Unix.close s with Unix.Unix_error _ -> ())
  end

let run t =
  (* a peer that disappears between our read and write must surface as
     EPIPE on the write, not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let http_thread =
    Option.map (fun s -> Thread.create (fun () -> http_loop t s) ()) t.http_sock
  in
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept t.sock with
      | fd, _ ->
          (* small frames must not sit out a Nagle/delayed-ACK round:
             answers leave as soon as they are written *)
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          Atomic.incr t.c_connections;
          Obs.Metrics.incr m_connections;
          ignore (Thread.create (fun () -> handle_conn t fd) ());
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ when Atomic.get t.stopping ->
          (* {!stop} closed the listener under us *)
          ()
  in
  loop ();
  Option.iter Thread.join http_thread;
  Pool.shutdown t.pool;
  (* the pool is joined: recording has ceased, resets are safe again *)
  Obs.Metrics.unguard_reset ()

let start t = Thread.create run t
