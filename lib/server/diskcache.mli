(** mmap-persisted compiled-CSR image cache — the disk tier behind
    [lcp serve --cache-dir].

    Each {!Lru} key gets one [<key>.lcpc] file holding the compiled
    image's raw arrays plus the scheme name and graph6 bytes it was
    built from. {!load} memory-maps the file, validates a whole-file
    checksum and the identity fields, and reassembles the
    {!Simulator.compiled} from the persisted arrays — no graph6
    decode, no {!Simulator.compile} — so a restarted daemon answers
    its first request for a known graph warm.

    Both operations are total: {!store} is best-effort (temp file +
    atomic rename; failures are swallowed — a read-only cache dir
    must never fail the request that tried to warm it) and {!load}
    answers [None] on any corruption, truncation, version or identity
    mismatch, leaving the caller to fall back to compiling. *)

val path : dir:string -> string -> string
(** Cache file for a key, with non-filename characters sanitised. *)

val store :
  dir:string ->
  key:string ->
  scheme:string ->
  graph6:string ->
  Simulator.compiled ->
  unit

val load :
  dir:string ->
  key:string ->
  scheme:string ->
  graph6:string ->
  Simulator.compiled option
(** [Some compiled] only if the file exists, its checksum and stored
    (scheme, graph6) identity match, and every structural invariant
    re-validates ({!Csr.import}). *)

type counts = { hits : int; misses : int; invalid : int }

val counts : unit -> counts
(** Always-on load outcome counters (process-wide, independent of
    {!Obs.Metrics.enabled}): [hits] = image reassembled, [misses] = no
    file, [invalid] = a file existed but failed validation and was
    ignored. Rendered as [lcp_diskcache_*_total] in the server's
    Prometheus exposition. *)
