(* A small LRU map for the compiled-verifier cache.

   Design point: capacities here are catalogue-sized (tens to a few
   hundred compiled CSR images), so instead of the classic intrusive
   doubly-linked list this uses a hash table whose entries carry a
   monotonically increasing use stamp — O(1) lookups and inserts, and
   an O(capacity) scan only when a full cache must evict. That keeps
   the code obviously correct (no pointer surgery) at a cost that is
   noise next to the graph compile the cache exists to avoid.

   Not thread-safe: the server serialises access with its own mutex
   (workers on several domains share one cache). *)

type 'a entry = { mutable value : 'a; mutable stamp : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    capacity;
    tbl = Hashtbl.create (max 16 capacity);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      e.stamp <- tick t;
      t.hits <- t.hits + 1;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (key, e.stamp))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.evictions <- t.evictions + 1
  | None -> ()

let put t key value =
  if t.capacity > 0 then
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
        e.value <- value;
        e.stamp <- tick t
    | None ->
        if Hashtbl.length t.tbl >= t.capacity then evict_oldest t;
        Hashtbl.add t.tbl key { value; stamp = tick t }

let length t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
