(* The plain-HTTP telemetry sidecar shared by the verification daemon
   and the cluster router: a deliberately minimal HTTP/1.0 responder —
   enough for a Prometheus scraper or `curl`, one request per
   connection, no keep-alive, no external dependency. The owner hands
   [serve] a [handler] mapping a GET path to a complete response;
   everything else (framing, query-string stripping, the method guard)
   lives here once. *)

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"

let not_found =
  response ~status:"404 Not Found" ~content_type:"text/plain" "not found\n"

let handle_conn ~handler fd =
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  try
    (* read up to the end of the request line; headers are ignored *)
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 256 in
    let rec fill () =
      if (not (String.contains (Buffer.contents buf) '\n'))
         && Buffer.length buf < 8192
      then begin
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          fill ()
        end
      end
    in
    fill ();
    let line =
      match String.index_opt (Buffer.contents buf) '\n' with
      | Some i -> String.sub (Buffer.contents buf) 0 i
      | None -> Buffer.contents buf
    in
    let reply =
      match String.split_on_char ' ' (String.trim line) with
      | [ "GET"; target; _version ] ->
          (* strip any query string: /metrics?x=1 -> /metrics *)
          let path =
            match String.index_opt target '?' with
            | Some i -> String.sub target 0 i
            | None -> target
          in
          handler path
      | _ ->
          response ~status:"400 Bad Request" ~content_type:"text/plain"
            "only GET is served here\n"
    in
    Net_io.write_all fd reply
  with Unix.Unix_error _ -> ()

let serve ~stopping ~handler sock =
  let rec loop () =
    if not (stopping ()) then
      match Unix.accept sock with
      | fd, _ ->
          ignore (Thread.create (fun () -> handle_conn ~handler fd) ());
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ when stopping () -> ()
  in
  loop ()
