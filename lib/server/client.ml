(* Blocking client for the verification service, plus the load
   generator behind `lcp loadgen`.

   The load generator replays a deterministic prove/verify mix over a
   small set of cycle graphs: a setup pass proves each graph once
   (which also warms the server's compiled-verifier cache), then
   [connections] threads each issue [requests] requests round-robin
   over the graphs, recording per-request latency with {!Obs.Clock}.
   Every request carries a distinct correlation id and the reply's
   echo is checked — a mismatch is counted, not ignored, since it
   means request/response framing slipped. The summary reports
   throughput, p50/p95/p99 overall and per request type, a per-code
   error breakdown, and closes with the server's own stats (so a run
   shows its cache hit rate). *)

type t = { fd : Unix.file_descr; version : int }

(* Deterministic jittered exponential backoff, shared by the client's
   connect retries, the cluster router's forwarding retries and `lcp
   top`'s reconnect loop. The jitter is a pure function of (seed,
   attempt) — a splitmix-style integer hash — so tests can pin exact
   delays and a retry storm still decorrelates across callers (each
   uses a distinct seed, e.g. the correlation id). *)
module Backoff = struct
  type t = {
    base_ms : float;  (** first delay, before jitter *)
    max_ms : float;  (** growth cap, before jitter *)
    multiplier : float;
    jitter : float;  (** delays land in [(1-j) .. (1+j)) x nominal *)
  }

  let default =
    { base_ms = 10.0; max_ms = 2_000.0; multiplier = 2.0; jitter = 0.5 }

  let mix seed attempt =
    let h = ref (((seed + 1) * 0x9E3779B1) lxor ((attempt + 1) * 0x85EBCA6B)) in
    h := !h lxor (!h lsr 16);
    h := !h * 0xC2B2AE35 land max_int;
    h := !h lxor (!h lsr 13);
    !h land 0xFFFFFF

  (* uniform in [0, 1), deterministic in (seed, attempt) *)
  let unit_float ~seed ~attempt =
    float_of_int (mix seed attempt) /. 16_777_216.0

  let delay_ms p ~seed ~attempt =
    let attempt = max 1 attempt in
    let nominal =
      Float.min p.max_ms
        (p.base_ms *. (p.multiplier ** float_of_int (attempt - 1)))
    in
    let u = unit_float ~seed ~attempt in
    nominal *. (1.0 -. p.jitter +. (2.0 *. p.jitter *. u))
end

let default_sleep_ms ms = if ms > 0.0 then Thread.delay (ms /. 1000.0)

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
      match
        Unix.getaddrinfo host ""
          [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> Ok addr
      | _ -> Error (Printf.sprintf "cannot resolve host %S" host)
      | exception _ -> Error (Printf.sprintf "cannot resolve host %S" host))

let connect_once ~host ~version ~port =
  match resolve host with
  | Error _ as e -> e
  | Ok addr -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
      | () ->
          (* without this, every small request frame waits out a
             Nagle/delayed-ACK exchange — milliseconds of idle per
             round trip on loopback *)
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          Ok { fd; version }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with _ -> ());
          Error
            (Printf.sprintf "cannot connect to %s:%d: %s" host port
               (Unix.error_message e)))

let connect ?(host = "127.0.0.1") ?(version = Wire.protocol_version)
    ?(retries = 0) ?(backoff = Backoff.default) ?(backoff_seed = 0)
    ?(sleep_ms = default_sleep_ms) ~port () =
  if version < Wire.min_protocol_version || version > Wire.protocol_version
  then
    Error
      (Printf.sprintf "unsupported protocol version %d (supported: %d..%d)"
         version Wire.min_protocol_version Wire.protocol_version)
  else
    let rec go attempt =
      match connect_once ~host ~version ~port with
      | Ok _ as ok -> ok
      | Error _ as e when attempt > retries -> e
      | Error _ ->
          sleep_ms (Backoff.delay_ms backoff ~seed:backoff_seed ~attempt);
          go (attempt + 1)
    in
    go 1

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send ?(id = 0) ?trace t req =
  match
    Net_io.write_all t.fd
      (Wire.encode_request ~version:t.version ~id ?trace req)
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error ("send: " ^ Unix.error_message e)

let recv_full t =
  match Net_io.read_exact t.fd Wire.header_bytes with
  | None -> Error "connection closed by server"
  | Some raw -> (
      match Wire.decode_header raw with
      | Error m -> Error ("bad response header: " ^ m)
      | Ok { Wire.version; tag; length } -> (
          match Net_io.read_exact t.fd length with
          | None -> Error "connection closed mid-response"
          | Some payload -> Wire.decode_response_payload ~version ~tag payload))
  | exception Unix.Unix_error (e, _, _) ->
      Error ("recv: " ^ Unix.error_message e)

let recv_id t = Result.map (fun (id, _, resp) -> (id, resp)) (recv_full t)
let recv t = Result.map (fun (_, _, resp) -> resp) (recv_full t)

let call_id ?trace t ~id req =
  match send ~id ?trace t req with Ok () -> recv_id t | Error _ as e -> e

let call t req = Result.map snd (call_id t ~id:0 req)

(* The wire form of a local span: the next hop parents its own request
   span under the span that timed this call. *)
let wire_trace (c : Obs.Trace.ctx) =
  if c.Obs.Trace.span = 0 then None
  else
    Some
      {
        Wire.trace_hi = c.Obs.Trace.t_hi;
        trace_lo = c.Obs.Trace.t_lo;
        parent_span = c.Obs.Trace.span;
      }

(* --- load generator --------------------------------------------------- *)

type percentiles = {
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_us : float;
  max_us : float;
}

type lat_summary = { count : int; latency : percentiles option }

(* Error classification: one slot per wire error code, plus transport
   failures and well-formed-but-wrong responses. *)
let error_codes =
  [
    Wire.Bad_frame;
    Wire.Unsupported_version;
    Wire.Unknown_scheme;
    Wire.Bad_graph;
    Wire.Bad_request;
    Wire.Overloaded;
    Wire.Deadline_exceeded;
    Wire.Internal;
    Wire.Unavailable;
  ]

let n_codes = List.length error_codes
let slot_transport = n_codes
let slot_unexpected = n_codes + 1
let n_slots = n_codes + 2

let slot_of_code code =
  let rec idx i = function
    | [] -> slot_unexpected
    | c :: rest -> if c = code then i else idx (i + 1) rest
  in
  idx 0 error_codes

let slot_name i =
  if i = slot_transport then "transport"
  else if i = slot_unexpected then "unexpected"
  else Wire.error_code_to_string (List.nth error_codes i)

type target_stat = {
  t_host : string;
  t_port : int;
  t_connections : int;
  t_ok : int;
  t_errors : int;
}

type report = {
  connections : int;
  requests_per_connection : int;
  batch : int;
  prove_weight : int;
  verify_weight : int;
  sampled_weight : int;
  queries : int;
  scheme : string;
  sizes : int list;
  total_s : float;
  throughput_rps : float;
  throughput_ops : float;
  ok : int;
  errors : int;
  errors_by_code : (string * int) list;
  id_mismatches : int;
  overall : lat_summary;
  prove : lat_summary;
  verify : lat_summary;
  sampled : lat_summary;
  escalations : int;
  batch_frames : lat_summary;
  targets : target_stat list;
  server : Wire.server_stats option;
  gc_alloc_bytes : float;
  gc_minor : int;
  gc_major : int;
}

let summarise ns_list =
  let a = Array.of_list ns_list in
  Array.sort compare a;
  let count = Array.length a in
  if count = 0 then { count; latency = None }
  else begin
    let us i = float_of_int a.(i) /. 1_000. in
    let pct p = us ((count - 1) * p / 100) in
    let sum = Array.fold_left ( + ) 0 a in
    {
      count;
      latency =
        Some
          {
            p50_us = pct 50;
            p95_us = pct 95;
            p99_us = pct 99;
            mean_us = float_of_int sum /. float_of_int count /. 1_000.;
            max_us = us (count - 1);
          };
    }
  end

(* One worker thread: its own connection, its own latency log. *)
type worker_result = {
  mutable w_ok : int;
  mutable w_errors : int;
  w_by_slot : int array;  (* n_slots entries *)
  mutable w_id_mismatches : int;
  mutable w_prove_ns : int list;
  mutable w_verify_ns : int list;
  mutable w_sampled_ns : int list;
  mutable w_escalations : int;
  mutable w_batch_ns : int list;  (* per-frame latency, batched mode only *)
}

(* Batched worker loop: each frame carries [batch] ops following the
   same deterministic mix as the plain loop (op [k = i * batch + j]
   behaves exactly like plain request [k]), with every cycle graph
   and its proof listed once in the frame's shared tables — op [j]'s
   proof index equals its graph index. ok/errors count {e ops}, so a
   batched and an unbatched run of equal op volume are directly
   comparable; latency is per frame ([w_batch_ns]). *)
let run_batch_worker ~client ~requests ~batch ~mix:(p, v) ~graphs ~conn_id
    ~trace_sample res =
  let ngraphs = Array.length graphs in
  let gtable = Array.to_list (Array.map fst graphs) in
  let ptable = Array.to_list (Array.map (fun (_, (_, p)) -> p) graphs) in
  let is_prove k = k mod (p + v) < p in
  for i = 0 to requests - 1 do
    let ops =
      List.init batch (fun j ->
          let k = (i * batch) + j in
          let gi = (conn_id + k) mod ngraphs in
          let _, (scheme, _) = graphs.(gi) in
          if is_prove k then Wire.Op_prove { scheme; graph = gi }
          else Wire.Op_verify { scheme; graph = gi; proof = gi })
    in
    let id = (conn_id * requests) + i + 1 in
    let tctx =
      if Obs.Trace.sample ~every:trace_sample id then Obs.Trace.ctx_of_rid id
      else Obs.Trace.null_ctx
    in
    let t0 = Obs.Clock.now_ns () in
    let outcome =
      Obs.Trace.span_ctx "client.request" "rid" id tctx (fun () ->
          call_id ?trace:(wire_trace tctx) client ~id
            (Wire.Batch { graphs = gtable; proofs = ptable; ops }))
    in
    let dt = Obs.Clock.now_ns () - t0 in
    (match outcome with
    | Ok (rid, _) when rid <> id ->
        res.w_id_mismatches <- res.w_id_mismatches + 1
    | _ -> ());
    let fail_all slot =
      res.w_errors <- res.w_errors + batch;
      res.w_by_slot.(slot) <- res.w_by_slot.(slot) + batch
    in
    match outcome with
    | Ok (_, Wire.Batch_reply items) when List.length items = batch ->
        res.w_batch_ns <- dt :: res.w_batch_ns;
        List.iteri
          (fun j item ->
            match item with
            | Wire.Item_proved (Some _) when is_prove ((i * batch) + j) ->
                res.w_ok <- res.w_ok + 1
            | Wire.Item_verified { accepted = true; _ }
              when not (is_prove ((i * batch) + j)) ->
                res.w_ok <- res.w_ok + 1
            | Wire.Item_error { code; _ } ->
                res.w_errors <- res.w_errors + 1;
                let s = slot_of_code code in
                res.w_by_slot.(s) <- res.w_by_slot.(s) + 1
            | _ ->
                res.w_errors <- res.w_errors + 1;
                res.w_by_slot.(slot_unexpected) <-
                  res.w_by_slot.(slot_unexpected) + 1)
          items
    | Ok (_, Wire.Error_reply { code; _ }) -> fail_all (slot_of_code code)
    | Ok _ -> fail_all slot_unexpected
    | Error _ -> fail_all slot_transport
  done

let run_worker ~host ~port ~requests ~batch ~mix:(p, v, s) ~queries ~graphs
    ~conn_id ~trace_sample res =
  match connect ~host ~port ~retries:2 ~backoff_seed:conn_id () with
  | Error _ ->
      let n = requests * max 1 batch in
      res.w_errors <- n;
      res.w_by_slot.(slot_transport) <- res.w_by_slot.(slot_transport) + n
  | Ok client when batch > 1 ->
      Fun.protect ~finally:(fun () -> close client) @@ fun () ->
      (* batched mode never carries sampled ops (loadgen rejects the
         combination), so the (p, v) mix is the whole story here *)
      run_batch_worker ~client ~requests ~batch ~mix:(p, v) ~graphs ~conn_id
        ~trace_sample res
  | Ok client ->
      Fun.protect ~finally:(fun () -> close client) @@ fun () ->
      let ngraphs = Array.length graphs in
      for i = 0 to requests - 1 do
        let g6, (scheme, proof) = graphs.((conn_id + i) mod ngraphs) in
        let k = i mod (p + v + s) in
        let kind = if k < p then `P else if k < p + v then `V else `S in
        (* distinct per request across all workers, never 0 *)
        let id = (conn_id * requests) + i + 1 in
        let req =
          match kind with
          | `P -> Wire.Prove { scheme; graph6 = g6 }
          | `V -> Wire.Verify { scheme; graph6 = g6; proof }
          | `S ->
              (* the request id doubles as the PRG seed: distinct per
                 request, deterministic per run *)
              Wire.Verify_sampled
                { scheme; graph6 = g6; proof; seed = id; queries;
                  budget_id = "" }
        in
        let tctx =
          if Obs.Trace.sample ~every:trace_sample id then
            Obs.Trace.ctx_of_rid id
          else Obs.Trace.null_ctx
        in
        let t0 = Obs.Clock.now_ns () in
        let outcome =
          Obs.Trace.span_ctx "client.request" "rid" id tctx (fun () ->
              call_id ?trace:(wire_trace tctx) client ~id req)
        in
        let dt = Obs.Clock.now_ns () - t0 in
        (match outcome with
        | Ok (rid, _) when rid <> id ->
            res.w_id_mismatches <- res.w_id_mismatches + 1
        | _ -> ());
        match outcome with
        | Ok (_, Wire.Proved (Some _)) when kind = `P ->
            res.w_ok <- res.w_ok + 1;
            res.w_prove_ns <- dt :: res.w_prove_ns
        | Ok (_, Wire.Verified { accepted = true; _ }) when kind = `V ->
            res.w_ok <- res.w_ok + 1;
            res.w_verify_ns <- dt :: res.w_verify_ns
        | Ok (_, Wire.Sampled_verified { accepted = true; escalated; _ })
          when kind = `S ->
            res.w_ok <- res.w_ok + 1;
            if escalated then res.w_escalations <- res.w_escalations + 1;
            res.w_sampled_ns <- dt :: res.w_sampled_ns
        | Ok (_, Wire.Error_reply { code; _ }) ->
            res.w_errors <- res.w_errors + 1;
            let s = slot_of_code code in
            res.w_by_slot.(s) <- res.w_by_slot.(s) + 1
        | Ok _ ->
            res.w_errors <- res.w_errors + 1;
            res.w_by_slot.(slot_unexpected) <-
              res.w_by_slot.(slot_unexpected) + 1
        | Error _ ->
            res.w_errors <- res.w_errors + 1;
            res.w_by_slot.(slot_transport) <-
              res.w_by_slot.(slot_transport) + 1
      done

let loadgen ?(host = "127.0.0.1") ?targets ?(batch = 1) ?(trace_sample = 0)
    ?(queries = 4) ~port ~connections ~requests ~mix:(p, v, s) ~scheme ~sizes
    () =
  (* The endpoint list: explicit [targets] (router / multi-daemon runs)
     or the single [host]:[port]. Workers round-robin over it. *)
  let endpoints =
    match targets with Some ((_ :: _) as l) -> l | _ -> [ (host, port) ]
  in
  let n_ep = List.length endpoints in
  let endpoint conn_id = List.nth endpoints (conn_id mod n_ep) in
  if connections < 1 then Error "loadgen: connections must be >= 1"
  else if requests < 1 then Error "loadgen: requests must be >= 1"
  else if batch < 1 || batch > 0xFFFF then
    Error "loadgen: batch must be in 1..65535"
  else if p < 0 || v < 0 || s < 0 || p + v + s = 0 then
    Error "loadgen: the mix needs non-negative weights summing to >= 1"
  else if batch > 1 && s > 0 then
    Error "loadgen: sampled ops cannot ride batch frames (drop --batch or the S weight)"
  else if queries < 1 then Error "loadgen: queries must be >= 1"
  else if sizes = [] then Error "loadgen: need at least one graph size"
  else if List.exists (fun s -> s < 3) sizes then
    Error "loadgen: cycle sizes must be >= 3"
  else
    (* Setup pass, one connection per endpoint: prove every graph once
       on each (warming every cache); the proofs the verify mix
       replays come from the first endpoint — proving is
       deterministic, so they all agree. *)
    let setup_on (host, port) =
      match connect ~host ~port () with
      | Error _ as e -> e
      | Ok client ->
          Fun.protect ~finally:(fun () -> close client) @@ fun () ->
          let rec build acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | size :: rest -> (
                let g6 = Graph6.encode (Builders.cycle size) in
                match call client (Wire.Prove { scheme; graph6 = g6 }) with
                | Ok (Wire.Proved (Some proof)) ->
                    build ((g6, (scheme, proof)) :: acc) rest
                | Ok (Wire.Proved None) ->
                    Error
                      (Printf.sprintf
                         "loadgen: scheme %S rejects the %d-cycle as a \
                          no-instance; pick a scheme/size mix of yes-instances"
                         scheme size)
                | Ok (Wire.Error_reply { code; message }) ->
                    Error
                      (Printf.sprintf "loadgen setup: server said %s: %s"
                         (Wire.error_code_to_string code)
                         message)
                | Ok _ -> Error "loadgen setup: unexpected response type"
                | Error m -> Error ("loadgen setup: " ^ m))
          in
          build [] sizes
    in
    let graphs_res =
      let rec warm first = function
        | [] -> ( match first with Some g -> Ok g | None -> Error "loadgen: no endpoints")
        | ep :: rest -> (
            match setup_on ep with
            | Error _ as e -> e
            | Ok g ->
                warm (match first with None -> Some g | Some _ -> first) rest)
      in
      warm None endpoints
    in
    match graphs_res with
    | Error _ as e -> e
    | Ok graphs ->
        let results =
          Array.init connections (fun _ ->
              {
                w_ok = 0;
                w_errors = 0;
                w_by_slot = Array.make n_slots 0;
                w_id_mismatches = 0;
                w_prove_ns = [];
                w_verify_ns = [];
                w_sampled_ns = [];
                w_escalations = 0;
                w_batch_ns = [];
              })
        in
        (* Client-side GC bracket: worker threads share this domain
           (systhreads), so the domain-local counters cover the whole
           run — the client half of a bench's allocation ledger. *)
        let gc0 = Gc.quick_stat () in
        let alloc0 = Gc.allocated_bytes () in
        let t0 = Obs.Clock.now_ns () in
        let threads =
          List.init connections (fun conn_id ->
              let host, port = endpoint conn_id in
              Thread.create
                (fun () ->
                  run_worker ~host ~port ~requests ~batch ~mix:(p, v, s)
                    ~queries ~graphs ~conn_id ~trace_sample results.(conn_id))
                ())
        in
        List.iter Thread.join threads;
        let total_s = Obs.Clock.ns_to_s (Obs.Clock.now_ns () - t0) in
        let gc_alloc_bytes = Gc.allocated_bytes () -. alloc0 in
        let gc1 = Gc.quick_stat () in
        let gc_minor = gc1.Gc.minor_collections - gc0.Gc.minor_collections in
        let gc_major = gc1.Gc.major_collections - gc0.Gc.major_collections in
        let per_target =
          List.mapi
            (fun i (t_host, t_port) ->
              let own = ref [] in
              Array.iteri
                (fun conn_id r -> if conn_id mod n_ep = i then own := r :: !own)
                results;
              {
                t_host;
                t_port;
                t_connections = List.length !own;
                t_ok = List.fold_left (fun a r -> a + r.w_ok) 0 !own;
                t_errors = List.fold_left (fun a r -> a + r.w_errors) 0 !own;
              })
            endpoints
        in
        let server_stats =
          let host, port = List.hd endpoints in
          match connect ~host ~port () with
          | Error _ -> None
          | Ok client ->
              Fun.protect ~finally:(fun () -> close client) @@ fun () ->
              (match call client Wire.Stats with
              | Ok (Wire.Stats_reply st) -> Some st
              | _ -> None)
        in
        let ok = Array.fold_left (fun a r -> a + r.w_ok) 0 results in
        let errors = Array.fold_left (fun a r -> a + r.w_errors) 0 results in
        let id_mismatches =
          Array.fold_left (fun a r -> a + r.w_id_mismatches) 0 results
        in
        let errors_by_code =
          List.filter_map
            (fun slot ->
              let n =
                Array.fold_left (fun a r -> a + r.w_by_slot.(slot)) 0 results
              in
              if n = 0 then None else Some (slot_name slot, n))
            (List.init n_slots Fun.id)
        in
        let prove_ns =
          Array.fold_left (fun a r -> List.rev_append r.w_prove_ns a) [] results
        in
        let verify_ns =
          Array.fold_left (fun a r -> List.rev_append r.w_verify_ns a) [] results
        in
        let sampled_ns =
          Array.fold_left
            (fun a r -> List.rev_append r.w_sampled_ns a)
            [] results
        in
        let escalations =
          Array.fold_left (fun a r -> a + r.w_escalations) 0 results
        in
        let batch_ns =
          Array.fold_left (fun a r -> List.rev_append r.w_batch_ns a) [] results
        in
        (* ok + errors counts ops in both modes (each op lands in
           exactly one bucket, including the failure paths), so ops/s
           is the req-equivalent throughput and frames/s = ops/s ÷
           batch. *)
        let ops_per_s =
          if total_s > 0. then float_of_int (ok + errors) /. total_s else 0.
        in
        Ok
          {
            connections;
            requests_per_connection = requests;
            batch;
            prove_weight = p;
            verify_weight = v;
            sampled_weight = s;
            queries;
            scheme;
            sizes;
            total_s;
            throughput_rps = ops_per_s /. float_of_int batch;
            throughput_ops = ops_per_s;
            ok;
            errors;
            errors_by_code;
            id_mismatches;
            overall =
              summarise
                (List.rev_append batch_ns
                   (List.rev_append sampled_ns
                      (List.rev_append prove_ns verify_ns)));
            prove = summarise prove_ns;
            verify = summarise verify_ns;
            sampled = summarise sampled_ns;
            escalations;
            batch_frames = summarise batch_ns;
            targets = per_target;
            server = server_stats;
            gc_alloc_bytes;
            gc_minor;
            gc_major;
          }

(* --- rendering -------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let summary_json { count; latency } =
  match latency with
  | None -> Printf.sprintf {|{"count":%d}|} count
  | Some l ->
      Printf.sprintf
        {|{"count":%d,"p50_us":%.1f,"p95_us":%.1f,"p99_us":%.1f,"mean_us":%.1f,"max_us":%.1f}|}
        count l.p50_us l.p95_us l.p99_us l.mean_us l.max_us

let report_json r =
  let server =
    match r.server with
    | None -> "null"
    | Some st ->
        Printf.sprintf
          {|{"requests":%d,"cache_hits":%d,"cache_misses":%d,"cache_entries":%d,"overloaded":%d,"deadline_exceeded":%d,"uptime_ms":%d,"metrics":%s}|}
          st.Wire.requests st.Wire.cache_hits st.Wire.cache_misses
          st.Wire.cache_entries st.Wire.overloaded st.Wire.deadline_exceeded
          st.Wire.uptime_ms
          (if st.Wire.metrics_json = "" then "{}" else st.Wire.metrics_json)
  in
  let by_code =
    String.concat ","
      (List.map
         (fun (name, n) -> Printf.sprintf {|"%s":%d|} (json_escape name) n)
         r.errors_by_code)
  in
  let targets_json =
    String.concat ","
      (List.map
         (fun t ->
           Printf.sprintf
             {|{"host":"%s","port":%d,"connections":%d,"ok":%d,"errors":%d}|}
             (json_escape t.t_host) t.t_port t.t_connections t.t_ok t.t_errors)
         r.targets)
  in
  Printf.sprintf
    {|{"scheme":"%s","sizes":[%s],"connections":%d,"requests_per_connection":%d,"batch":%d,"mix":{"prove":%d,"verify":%d,"sampled":%d},"queries":%d,"total_s":%.4f,"throughput_rps":%.1f,"throughput_ops":%.1f,"ok":%d,"errors":%d,"errors_by_code":{%s},"id_mismatches":%d,"overall":%s,"prove":%s,"verify":%s,"sampled":%s,"escalations":%d,"batch_frames":%s,"targets":[%s],"server":%s,"gc":{"allocated_bytes":%.0f,"minor_collections":%d,"major_collections":%d}}|}
    (json_escape r.scheme)
    (String.concat "," (List.map string_of_int r.sizes))
    r.connections r.requests_per_connection r.batch r.prove_weight
    r.verify_weight r.sampled_weight r.queries r.total_s r.throughput_rps
    r.throughput_ops r.ok r.errors by_code r.id_mismatches
    (summary_json r.overall) (summary_json r.prove)
    (summary_json r.verify)
    (summary_json r.sampled)
    r.escalations
    (summary_json r.batch_frames)
    targets_json server r.gc_alloc_bytes r.gc_minor r.gc_major

let pp_summary ppf name { count; latency } =
  match latency with
  | None -> Format.fprintf ppf "%-8s 0 requests@." name
  | Some l ->
      Format.fprintf ppf
        "%-8s %5d requests  p50 %8.1f us  p95 %8.1f us  p99 %8.1f us  max \
         %8.1f us@."
        name count l.p50_us l.p95_us l.p99_us l.max_us

let pp_report ppf r =
  Format.fprintf ppf
    "loadgen: %d connection(s) x %d request(s)%s, mix \
     prove:verify:sampled = %d:%d:%d, scheme %s, cycle sizes [%s]@."
    r.connections r.requests_per_connection
    (if r.batch > 1 then Printf.sprintf " x %d op(s)/batch" r.batch else "")
    r.prove_weight r.verify_weight r.sampled_weight r.scheme
    (String.concat "; " (List.map string_of_int r.sizes));
  if r.batch > 1 then
    Format.fprintf ppf
      "total:   %.3f s, %.1f frame/s, %.1f op/s, %d ok, %d error(s)@."
      r.total_s r.throughput_rps r.throughput_ops r.ok r.errors
  else
    Format.fprintf ppf "total:   %.3f s, %.1f req/s, %d ok, %d error(s)@."
      r.total_s r.throughput_rps r.ok r.errors;
  if r.errors_by_code <> [] then
    Format.fprintf ppf "errors:  %s@."
      (String.concat ", "
         (List.map
            (fun (name, n) -> Printf.sprintf "%s %d" name n)
            r.errors_by_code));
  if r.id_mismatches > 0 then
    Format.fprintf ppf "warning: %d response id mismatch(es)@." r.id_mismatches;
  pp_summary ppf "overall" r.overall;
  if r.batch > 1 then pp_summary ppf "frame" r.batch_frames
  else begin
    pp_summary ppf "prove" r.prove;
    pp_summary ppf "verify" r.verify;
    if r.sampled_weight > 0 then begin
      pp_summary ppf "sampled" r.sampled;
      Format.fprintf ppf "sampled: q=%d, %d escalation(s)@." r.queries
        r.escalations
    end
  end;
  if List.length r.targets > 1 then
    List.iter
      (fun t ->
        Format.fprintf ppf
          "target:  %s:%d  %d connection(s), %d ok, %d error(s)@." t.t_host
          t.t_port t.t_connections t.t_ok t.t_errors)
      r.targets;
  if r.gc_alloc_bytes > 0.0 then
    Format.fprintf ppf
      "client:  %.1f MB allocated, %d minor / %d major collection(s)@."
      (r.gc_alloc_bytes /. 1_048_576.0)
      r.gc_minor r.gc_major;
  match r.server with
  | None -> ()
  | Some st ->
      Format.fprintf ppf
        "server:  %d requests, cache %d hit(s) / %d miss(es) (%d cached), %d \
         shed, %d past deadline@."
        st.Wire.requests st.Wire.cache_hits st.Wire.cache_misses
        st.Wire.cache_entries st.Wire.overloaded st.Wire.deadline_exceeded
