(* Blocking client for the verification service, plus the load
   generator behind `lcp loadgen`.

   The load generator replays a deterministic prove/verify mix over a
   small set of cycle graphs: a setup pass proves each graph once
   (which also warms the server's compiled-verifier cache), then
   [connections] threads each issue [requests] requests round-robin
   over the graphs, recording per-request latency with {!Obs.Clock}.
   The summary reports throughput and p50/p95/p99 both overall and per
   request type, and closes with the server's own stats (so a run
   shows its cache hit rate). *)

type t = { fd : Unix.file_descr }

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
      match
        Unix.getaddrinfo host ""
          [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> Ok addr
      | _ -> Error (Printf.sprintf "cannot resolve host %S" host)
      | exception _ -> Error (Printf.sprintf "cannot resolve host %S" host))

let connect ?(host = "127.0.0.1") ~port () =
  match resolve host with
  | Error _ as e -> e
  | Ok addr -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
      | () -> Ok { fd }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with _ -> ());
          Error
            (Printf.sprintf "cannot connect to %s:%d: %s" host port
               (Unix.error_message e)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  match Net_io.write_all t.fd (Wire.encode_request req) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error ("send: " ^ Unix.error_message e)

let recv t =
  match Net_io.read_exact t.fd Wire.header_bytes with
  | None -> Error "connection closed by server"
  | Some raw -> (
      match Wire.decode_header raw with
      | Error m -> Error ("bad response header: " ^ m)
      | Ok { Wire.tag; length } -> (
          match Net_io.read_exact t.fd length with
          | None -> Error "connection closed mid-response"
          | Some payload -> Wire.decode_response_payload ~tag payload))
  | exception Unix.Unix_error (e, _, _) ->
      Error ("recv: " ^ Unix.error_message e)

let call t req = match send t req with Ok () -> recv t | Error _ as e -> e

(* --- load generator --------------------------------------------------- *)

type percentiles = {
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_us : float;
  max_us : float;
}

type lat_summary = { count : int; latency : percentiles option }

type report = {
  connections : int;
  requests_per_connection : int;
  prove_weight : int;
  verify_weight : int;
  scheme : string;
  sizes : int list;
  total_s : float;
  throughput_rps : float;
  ok : int;
  errors : int;
  overall : lat_summary;
  prove : lat_summary;
  verify : lat_summary;
  server : Wire.server_stats option;
}

let summarise ns_list =
  let a = Array.of_list ns_list in
  Array.sort compare a;
  let count = Array.length a in
  if count = 0 then { count; latency = None }
  else begin
    let us i = float_of_int a.(i) /. 1_000. in
    let pct p = us ((count - 1) * p / 100) in
    let sum = Array.fold_left ( + ) 0 a in
    {
      count;
      latency =
        Some
          {
            p50_us = pct 50;
            p95_us = pct 95;
            p99_us = pct 99;
            mean_us = float_of_int sum /. float_of_int count /. 1_000.;
            max_us = us (count - 1);
          };
    }
  end

(* One worker thread: its own connection, its own latency log. *)
type worker_result = {
  mutable w_ok : int;
  mutable w_errors : int;
  mutable w_prove_ns : int list;
  mutable w_verify_ns : int list;
}

let run_worker ~host ~port ~requests ~mix:(p, v) ~targets ~conn_id res =
  match connect ~host ~port () with
  | Error _ -> res.w_errors <- requests
  | Ok client ->
      Fun.protect ~finally:(fun () -> close client) @@ fun () ->
      let ngraphs = Array.length targets in
      for i = 0 to requests - 1 do
        let g6, (scheme, proof) = targets.((conn_id + i) mod ngraphs) in
        let is_prove = i mod (p + v) < p in
        let req =
          if is_prove then Wire.Prove { scheme; graph6 = g6 }
          else Wire.Verify { scheme; graph6 = g6; proof }
        in
        let t0 = Obs.Clock.now_ns () in
        let outcome = call client req in
        let dt = Obs.Clock.now_ns () - t0 in
        match outcome with
        | Ok (Wire.Proved (Some _)) when is_prove ->
            res.w_ok <- res.w_ok + 1;
            res.w_prove_ns <- dt :: res.w_prove_ns
        | Ok (Wire.Verified { accepted = true; _ }) when not is_prove ->
            res.w_ok <- res.w_ok + 1;
            res.w_verify_ns <- dt :: res.w_verify_ns
        | Ok _ | Error _ -> res.w_errors <- res.w_errors + 1
      done

let loadgen ?(host = "127.0.0.1") ~port ~connections ~requests ~mix:(p, v)
    ~scheme ~sizes () =
  if connections < 1 then Error "loadgen: connections must be >= 1"
  else if requests < 1 then Error "loadgen: requests must be >= 1"
  else if p < 0 || v < 0 || p + v = 0 then
    Error "loadgen: the mix needs non-negative weights summing to >= 1"
  else if sizes = [] then Error "loadgen: need at least one graph size"
  else if List.exists (fun s -> s < 3) sizes then
    Error "loadgen: cycle sizes must be >= 3"
  else
    (* Setup pass on its own connection: prove every graph once to get
       the proofs the verify mix replays (and to warm the cache). *)
    let targets_res =
      match connect ~host ~port () with
      | Error _ as e -> e
      | Ok client ->
          Fun.protect ~finally:(fun () -> close client) @@ fun () ->
          let rec build acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | size :: rest -> (
                let g6 = Graph6.encode (Builders.cycle size) in
                match call client (Wire.Prove { scheme; graph6 = g6 }) with
                | Ok (Wire.Proved (Some proof)) ->
                    build ((g6, (scheme, proof)) :: acc) rest
                | Ok (Wire.Proved None) ->
                    Error
                      (Printf.sprintf
                         "loadgen: scheme %S rejects the %d-cycle as a \
                          no-instance; pick a scheme/size mix of yes-instances"
                         scheme size)
                | Ok (Wire.Error_reply { code; message }) ->
                    Error
                      (Printf.sprintf "loadgen setup: server said %s: %s"
                         (Wire.error_code_to_string code)
                         message)
                | Ok _ -> Error "loadgen setup: unexpected response type"
                | Error m -> Error ("loadgen setup: " ^ m))
          in
          build [] sizes
    in
    match targets_res with
    | Error _ as e -> e
    | Ok targets ->
        let results =
          Array.init connections (fun _ ->
              { w_ok = 0; w_errors = 0; w_prove_ns = []; w_verify_ns = [] })
        in
        let t0 = Obs.Clock.now_ns () in
        let threads =
          List.init connections (fun conn_id ->
              Thread.create
                (fun () ->
                  run_worker ~host ~port ~requests ~mix:(p, v) ~targets
                    ~conn_id results.(conn_id))
                ())
        in
        List.iter Thread.join threads;
        let total_s = Obs.Clock.ns_to_s (Obs.Clock.now_ns () - t0) in
        let server_stats =
          match connect ~host ~port () with
          | Error _ -> None
          | Ok client ->
              Fun.protect ~finally:(fun () -> close client) @@ fun () ->
              (match call client Wire.Stats with
              | Ok (Wire.Stats_reply st) -> Some st
              | _ -> None)
        in
        let ok = Array.fold_left (fun a r -> a + r.w_ok) 0 results in
        let errors = Array.fold_left (fun a r -> a + r.w_errors) 0 results in
        let prove_ns =
          Array.fold_left (fun a r -> List.rev_append r.w_prove_ns a) [] results
        in
        let verify_ns =
          Array.fold_left (fun a r -> List.rev_append r.w_verify_ns a) [] results
        in
        Ok
          {
            connections;
            requests_per_connection = requests;
            prove_weight = p;
            verify_weight = v;
            scheme;
            sizes;
            total_s;
            throughput_rps =
              (if total_s > 0. then float_of_int (ok + errors) /. total_s
               else 0.);
            ok;
            errors;
            overall = summarise (List.rev_append prove_ns verify_ns);
            prove = summarise prove_ns;
            verify = summarise verify_ns;
            server = server_stats;
          }

(* --- rendering -------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let summary_json { count; latency } =
  match latency with
  | None -> Printf.sprintf {|{"count":%d}|} count
  | Some l ->
      Printf.sprintf
        {|{"count":%d,"p50_us":%.1f,"p95_us":%.1f,"p99_us":%.1f,"mean_us":%.1f,"max_us":%.1f}|}
        count l.p50_us l.p95_us l.p99_us l.mean_us l.max_us

let report_json r =
  let server =
    match r.server with
    | None -> "null"
    | Some st ->
        Printf.sprintf
          {|{"requests":%d,"cache_hits":%d,"cache_misses":%d,"cache_entries":%d,"overloaded":%d,"deadline_exceeded":%d,"uptime_ms":%d,"metrics":%s}|}
          st.Wire.requests st.Wire.cache_hits st.Wire.cache_misses
          st.Wire.cache_entries st.Wire.overloaded st.Wire.deadline_exceeded
          st.Wire.uptime_ms
          (if st.Wire.metrics_json = "" then "{}" else st.Wire.metrics_json)
  in
  Printf.sprintf
    {|{"scheme":"%s","sizes":[%s],"connections":%d,"requests_per_connection":%d,"mix":{"prove":%d,"verify":%d},"total_s":%.4f,"throughput_rps":%.1f,"ok":%d,"errors":%d,"overall":%s,"prove":%s,"verify":%s,"server":%s}|}
    (json_escape r.scheme)
    (String.concat "," (List.map string_of_int r.sizes))
    r.connections r.requests_per_connection r.prove_weight r.verify_weight
    r.total_s r.throughput_rps r.ok r.errors (summary_json r.overall)
    (summary_json r.prove) (summary_json r.verify) server

let pp_summary ppf name { count; latency } =
  match latency with
  | None -> Format.fprintf ppf "%-8s 0 requests@." name
  | Some l ->
      Format.fprintf ppf
        "%-8s %5d requests  p50 %8.1f us  p95 %8.1f us  p99 %8.1f us  max \
         %8.1f us@."
        name count l.p50_us l.p95_us l.p99_us l.max_us

let pp_report ppf r =
  Format.fprintf ppf
    "loadgen: %d connection(s) x %d request(s), mix prove:verify = %d:%d, \
     scheme %s, cycle sizes [%s]@."
    r.connections r.requests_per_connection r.prove_weight r.verify_weight
    r.scheme
    (String.concat "; " (List.map string_of_int r.sizes));
  Format.fprintf ppf "total:   %.3f s, %.1f req/s, %d ok, %d error(s)@."
    r.total_s r.throughput_rps r.ok r.errors;
  pp_summary ppf "overall" r.overall;
  pp_summary ppf "prove" r.prove;
  pp_summary ppf "verify" r.verify;
  match r.server with
  | None -> ()
  | Some st ->
      Format.fprintf ppf
        "server:  %d requests, cache %d hit(s) / %d miss(es) (%d cached), %d \
         shed, %d past deadline@."
        st.Wire.requests st.Wire.cache_hits st.Wire.cache_misses
        st.Wire.cache_entries st.Wire.overloaded st.Wire.deadline_exceeded
