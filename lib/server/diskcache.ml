(* Persistent compiled-CSR image cache behind [lcp serve --cache-dir].

   One file per LRU key holds everything needed to reassemble a
   {!Simulator.compiled} without touching graph6: the raw CSR arrays,
   the static record-size table, and the original scheme/graph6 bytes
   for identity checking. A restarted daemon mmaps the file, verifies
   the checksum and the identity fields, rebuilds the instance from
   the CSR adjacency (O(n + m) persistent-map inserts — no O(n^2)
   graph6 bit scan, no [Simulator.compile]) and serves warm.

   Layout (all integers big-endian u64 unless noted):

     0    "LCPC"            magic, 4 bytes
     4    u8 version        format version, currently 1
     5    u32 scheme_len    then scheme bytes
     .    u32 graph6_len    then graph6 bytes
     .    u64 n, u64 m
     .    offsets  (n+1) x u64
     .    targets  2m x u64
     .    ids      n x u64
     .    static_bits n x u64
     end-8  u64 checksum    FNV-1a (62-bit) over every preceding byte

   Loads are total: any IO error, bad magic, short file, checksum or
   identity mismatch, or structural violation caught by {!Csr.import}
   yields [None] and the caller falls back to compiling. Stores are
   best-effort (write to a temp file, then rename into place, so a
   concurrent loader never sees a half-written image) and never raise. *)

let m_stores = Obs.Metrics.counter "diskcache.stores"
let m_loads = Obs.Metrics.counter "diskcache.loads"
let m_load_failures = Obs.Metrics.counter "diskcache.load_failures"

(* Always-on counters (the registry above is gated on
   [Obs.Metrics.enabled]) so the server's Prometheus exposition can
   render hit/miss/invalid unconditionally: hits = image reassembled,
   misses = no file (ENOENT), invalid = a file existed but failed
   checksum/identity/structure and was ignored. *)
let c_hits = Atomic.make 0
let c_misses = Atomic.make 0
let c_invalid = Atomic.make 0

type counts = { hits : int; misses : int; invalid : int }

let counts () =
  {
    hits = Atomic.get c_hits;
    misses = Atomic.get c_misses;
    invalid = Atomic.get c_invalid;
  }

let magic = "LCPC"
let format_version = 1

(* 62-bit FNV-1a: the two top bits are masked off so the value is
   identical on every 63-bit-int platform and safe to carry as u64. *)
let fnv_mask = 0x3FFF_FFFF_FFFF_FFFF
let fnv_offset = 0x3BF29CE484222325 (* FNV-1a offset basis, top bits masked *)
let fnv_prime = 0x100000001B3

let fnv_update h byte = (h lxor byte) * fnv_prime land fnv_mask

(* Keys are [scheme ^ "/" ^ md5hex]; anything outside a conservative
   filename alphabet becomes '_' so a hostile scheme name cannot
   escape the cache directory. *)
let path ~dir key =
  let safe =
    String.map
      (fun ch ->
        match ch with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> ch
        | _ -> '_')
      key
  in
  Filename.concat dir (safe ^ ".lcpc")

(* --- store ------------------------------------------------------------ *)

let w_u64 b v =
  for byte = 7 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (8 * byte)) land 0xff))
  done

let w_u32 b v =
  for byte = 3 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (8 * byte)) land 0xff))
  done

let encode ~scheme ~graph6 compiled =
  let csr = Simulator.compiled_csr compiled in
  let static_bits = Simulator.compiled_static_bits compiled in
  let offsets, targets, ids = Csr.export csr in
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr format_version);
  w_u32 b (String.length scheme);
  Buffer.add_string b scheme;
  w_u32 b (String.length graph6);
  Buffer.add_string b graph6;
  w_u64 b (Csr.n csr);
  w_u64 b (Csr.m csr);
  Array.iter (w_u64 b) offsets;
  Array.iter (w_u64 b) targets;
  Array.iter (w_u64 b) ids;
  Array.iter (w_u64 b) static_bits;
  let body = Buffer.contents b in
  let h = ref fnv_offset in
  String.iter (fun ch -> h := fnv_update !h (Char.code ch)) body;
  w_u64 b !h;
  Buffer.contents b

let store ~dir ~key ~scheme ~graph6 compiled =
  match
    let image = encode ~scheme ~graph6 compiled in
    let final = path ~dir key in
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" final (Unix.getpid ())
        (Thread.id (Thread.self ()))
    in
    let oc = open_out_bin tmp in
    (try output_string oc image
     with e ->
       close_out_noerr oc;
       raise e);
    close_out oc;
    Unix.rename tmp final
  with
  | () -> Obs.Metrics.incr m_stores
  | exception (Unix.Unix_error _ | Sys_error _) ->
      (* best-effort: a read-only or vanished cache dir must never
         fail the request that tried to warm it *)
      ()

(* --- load ------------------------------------------------------------- *)

exception Bad of string

type mapped = {
  buf : (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable pos : int;
}

let byte mp i = Bigarray.Array1.unsafe_get mp.buf i

let need mp k =
  if mp.pos + k > Bigarray.Array1.dim mp.buf then raise (Bad "truncated image")

let r_u64 mp =
  need mp 8;
  let v = ref 0 in
  for _ = 1 to 8 do
    v := (!v lsl 8) lor Char.code (byte mp mp.pos);
    mp.pos <- mp.pos + 1
  done;
  if !v < 0 then raise (Bad "u64 field out of int range");
  !v

let r_u32 mp =
  need mp 4;
  let v = ref 0 in
  for _ = 1 to 4 do
    v := (!v lsl 8) lor Char.code (byte mp mp.pos);
    mp.pos <- mp.pos + 1
  done;
  !v

let r_string mp len =
  need mp len;
  let s = String.init len (fun i -> byte mp (mp.pos + i)) in
  mp.pos <- mp.pos + len;
  s

let r_u64_array mp n =
  (* bound the count by the bytes actually mapped before allocating *)
  need mp (n * 8);
  Array.init n (fun _ -> r_u64 mp)

(* Undirected edges appear in both CSR rows; adding each (i, u) with
   i <= u once rebuilds the exact graph [Csr.of_graph] came from. *)
let graph_of_csr csr =
  let g = ref Graph.empty in
  for i = 0 to Csr.n csr - 1 do
    g := Graph.add_node !g (Csr.node csr i);
    Csr.iter_neighbours csr i (fun u ->
        if i <= u then g := Graph.add_edge !g (Csr.node csr i) (Csr.node csr u))
  done;
  !g

let decode mp ~scheme ~graph6 =
  let dim = Bigarray.Array1.dim mp.buf in
  if dim < 4 + 1 + 8 then raise (Bad "file too small");
  if r_string mp 4 <> magic then raise (Bad "bad magic");
  need mp 1;
  let v = Char.code (byte mp mp.pos) in
  mp.pos <- mp.pos + 1;
  if v <> format_version then raise (Bad (Printf.sprintf "format version %d" v));
  (* checksum first: everything after it can then trust the bytes are
     the ones the writer produced (structural checks still run) *)
  let h = ref fnv_offset in
  for i = 0 to dim - 9 do
    h := fnv_update !h (Char.code (byte mp i))
  done;
  let stored =
    let v = ref 0 in
    for i = dim - 8 to dim - 1 do
      v := (!v lsl 8) lor Char.code (byte mp i)
    done;
    !v
  in
  if stored <> !h then raise (Bad "checksum mismatch");
  let file_scheme = r_string mp (r_u32 mp) in
  let file_graph6 = r_string mp (r_u32 mp) in
  if file_scheme <> scheme || file_graph6 <> graph6 then
    raise (Bad "identity mismatch");
  let n = r_u64 mp in
  let m = r_u64 mp in
  if n > Sys.max_array_length - 1 then raise (Bad "node count out of range");
  let offsets = r_u64_array mp (n + 1) in
  let targets = r_u64_array mp (2 * m) in
  let ids = r_u64_array mp n in
  let static_bits = r_u64_array mp n in
  if mp.pos <> dim - 8 then raise (Bad "trailing bytes before checksum");
  match Csr.import ~offsets ~targets ~ids with
  | Error e -> raise (Bad e)
  | Ok csr ->
      let inst = Instance.of_graph (graph_of_csr csr) in
      Simulator.compiled_of_parts inst csr static_bits

let load ~dir ~key ~scheme ~graph6 =
  let file = path ~dir key in
  match
    let fd = Unix.openfile file [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let buf =
          Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |])
        in
        decode { buf; pos = 0 } ~scheme ~graph6)
  with
  | compiled ->
      Atomic.incr c_hits;
      Obs.Metrics.incr m_loads;
      Some compiled
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      Atomic.incr c_misses;
      None
  | exception (Bad _ | Unix.Unix_error _ | Sys_error _ | Invalid_argument _) ->
      Atomic.incr c_invalid;
      Obs.Metrics.incr m_load_failures;
      None
