(** Minimal plain-HTTP/1.0 telemetry sidecar, shared by the
    verification daemon ({!Server}) and the cluster router
    ({!Router}): one request per connection, GET only, no keep-alive,
    no external dependency — just enough surface for a Prometheus
    scraper, a Kubernetes probe or [curl]. *)

val response : status:string -> content_type:string -> string -> string
(** A complete HTTP/1.0 response: status line, [Content-Type],
    [Content-Length], [Connection: close], body. *)

val prometheus_content_type : string
(** ["text/plain; version=0.0.4; charset=utf-8"]. *)

val not_found : string
(** The canned 404 response — the [handler] fallback. *)

val serve :
  stopping:(unit -> bool) -> handler:(string -> string) -> Unix.file_descr -> unit
(** Accept loop on an already-listening socket: one thread per
    connection, each parsed down to its GET path (query string
    stripped) and answered with [handler path] — a {e complete}
    response built with {!response}. Returns when [stopping ()] turns
    true and the socket is closed under it; non-GET requests get a
    400 without reaching the handler. *)
