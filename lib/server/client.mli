(** Blocking client for the verification daemon, and the load
    generator behind [lcp loadgen].

    The client half is deliberately small: connect, send a
    {!Wire.request}, read back a {!Wire.response}. Like the server it
    never lets malformed peer bytes out as exceptions — every call
    returns a [result]. *)

type t

val connect : ?host:string -> port:int -> unit -> (t, string) result
(** Default host 127.0.0.1; names are resolved via [getaddrinfo]. *)

val close : t -> unit

val call : t -> Wire.request -> (Wire.response, string) result
(** One request/response round trip. A server-side problem arrives as
    [Ok (Error_reply _)]; [Error] means the transport or framing
    itself failed. *)

val send : t -> Wire.request -> (unit, string) result
(** Fire without waiting — paired with {!recv}, lets a caller keep a
    slow request in flight while talking on other connections (the
    deadline tests drive the server into saturation this way). *)

val recv : t -> (Wire.response, string) result

(** {1 Load generation} *)

type percentiles = {
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_us : float;
  max_us : float;
}

type lat_summary = { count : int; latency : percentiles option }

type report = {
  connections : int;
  requests_per_connection : int;
  prove_weight : int;
  verify_weight : int;
  scheme : string;
  sizes : int list;
  total_s : float;
  throughput_rps : float;
  ok : int;
  errors : int;
  overall : lat_summary;
  prove : lat_summary;
  verify : lat_summary;
  server : Wire.server_stats option;
      (** The server's own stats, fetched after the run — shows the
          cache hit rate the workload achieved. *)
}

val loadgen :
  ?host:string ->
  port:int ->
  connections:int ->
  requests:int ->
  mix:int * int ->
  scheme:string ->
  sizes:int list ->
  unit ->
  (report, string) result
(** Replay a deterministic prove/verify mix. A setup pass proves one
    cycle graph per listed size (warming the server cache), then
    [connections] threads each send [requests] requests round-robin
    over the graphs; [mix = (p, v)] interleaves [p] proves then [v]
    verifies per [p + v] requests. A request only counts as [ok] if
    the semantically right response came back (a proof, or an
    all-nodes-accept verdict). *)

val report_json : report -> string
(** The latency summary as one JSON object (the CI artifact). *)

val pp_report : Format.formatter -> report -> unit
