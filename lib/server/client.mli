(** Blocking client for the verification daemon, and the load
    generator behind [lcp loadgen].

    The client half is deliberately small: connect, send a
    {!Wire.request}, read back a {!Wire.response}. Like the server it
    never lets malformed peer bytes out as exceptions — every call
    returns a [result]. A connection speaks one protocol version
    (default {!Wire.protocol_version}); on v2 every call may carry a
    correlation id, and {!call_id} hands back the id the server
    echoed (or assigned, when 0 was sent). *)

type t

(** Deterministic jittered exponential backoff — the retry schedule
    shared by {!connect}, the cluster router's forwarding loop and
    [lcp top]'s reconnects. The delay for [(seed, attempt)] is a pure
    function (an integer-hash jitter over an exponential ramp), so
    tests can pin exact values while concurrent retriers with distinct
    seeds still decorrelate. *)
module Backoff : sig
  type t = {
    base_ms : float;  (** nominal first delay *)
    max_ms : float;  (** cap on the nominal (pre-jitter) delay *)
    multiplier : float;  (** per-attempt growth factor *)
    jitter : float;
        (** delays land uniformly in [(1-j) .. (1+j)) x nominal *)
  }

  val default : t
  (** 10ms base, x2 growth, 2s cap, 50% jitter. *)

  val delay_ms : t -> seed:int -> attempt:int -> float
  (** The delay before retry number [attempt] (1-based; values < 1 are
      clamped to 1). Deterministic in [(seed, attempt)]. *)

  val unit_float : seed:int -> attempt:int -> float
  (** The underlying uniform draw in [0, 1) — exposed for callers that
      need a deterministic coin with the same decorrelation
      properties. *)
end

val connect :
  ?host:string ->
  ?version:int ->
  ?retries:int ->
  ?backoff:Backoff.t ->
  ?backoff_seed:int ->
  ?sleep_ms:(float -> unit) ->
  port:int ->
  unit ->
  (t, string) result
(** Default host 127.0.0.1, default version {!Wire.protocol_version};
    names are resolved via [getaddrinfo]. An out-of-range [version] is
    an [Error], not an exception.

    [retries] (default 0) extra attempts follow a failed connect, each
    preceded by a {!Backoff.delay_ms} sleep for attempts [1..retries]
    with [backoff] (default {!Backoff.default}) and [backoff_seed].
    [sleep_ms] is the virtual-clock hook: tests inject a recorder
    instead of the default [Thread.delay] so no wall time passes. *)

val close : t -> unit

val call : t -> Wire.request -> (Wire.response, string) result
(** One request/response round trip (correlation id elided). A
    server-side problem arrives as [Ok (Error_reply _)]; [Error] means
    the transport or framing itself failed. *)

val call_id :
  ?trace:Wire.trace_context ->
  t ->
  id:int ->
  Wire.request ->
  (int * Wire.response, string) result
(** {!call} carrying correlation id [id] (0 = let the server assign
    one); returns the id from the response alongside it. On a v1
    connection ids never touch the wire and the response id is 0.
    [trace] attaches a distributed-tracing context to the request
    frame (v2 only — a v1 connection silently drops it, degrading that
    hop to unsampled). *)

val send :
  ?id:int -> ?trace:Wire.trace_context -> t -> Wire.request ->
  (unit, string) result
(** Fire without waiting — paired with {!recv}, lets a caller keep a
    slow request in flight while talking on other connections (the
    deadline tests drive the server into saturation this way). *)

val recv : t -> (Wire.response, string) result

val recv_id : t -> (int * Wire.response, string) result

val recv_full :
  t -> (int * Wire.trace_context option * Wire.response, string) result
(** {!recv_id} plus the trace context the server echoed (it mirrors
    the request's verbatim; [None] on v1 or untraced requests). *)

val wire_trace : Obs.Trace.ctx -> Wire.trace_context option
(** The wire form of a local span: [None] for {!Obs.Trace.null_ctx},
    otherwise a context whose [parent_span] is the local span's id —
    so the next hop parents its request span under the span that
    timed this call. *)

(** {1 Load generation} *)

type percentiles = {
  p50_us : float;
  p95_us : float;
  p99_us : float;
  mean_us : float;
  max_us : float;
}

type lat_summary = { count : int; latency : percentiles option }

type target_stat = {
  t_host : string;
  t_port : int;
  t_connections : int;  (** worker connections assigned to this target *)
  t_ok : int;
  t_errors : int;
}
(** Per-endpoint slice of a multi-target run. *)

type report = {
  connections : int;
  requests_per_connection : int;
  batch : int;
      (** Ops per frame; 1 means plain (unbatched) requests. *)
  prove_weight : int;
  verify_weight : int;
  sampled_weight : int;
      (** Sampled-verify ops per mix cycle (the [S] in [P:V:S]). *)
  queries : int;  (** Per-node query bound sampled ops carried. *)
  scheme : string;
  sizes : int list;
  total_s : float;
  throughput_rps : float;  (** Wire frames per second. *)
  throughput_ops : float;
      (** Request-equivalent operations per second — equals
          [throughput_rps] when [batch = 1], and is the number to
          compare across batch sizes. *)
  ok : int;
  errors : int;
  errors_by_code : (string * int) list;
      (** Non-zero error tallies by wire error code, plus the
          pseudo-codes ["transport"] (connection/framing failures) and
          ["unexpected"] (well-formed but semantically wrong
          responses). Empty on a clean run. *)
  id_mismatches : int;
      (** Responses whose echoed correlation id differed from the
          request's — always 0 unless request/response framing
          slipped. *)
  overall : lat_summary;
  prove : lat_summary;
  verify : lat_summary;
  sampled : lat_summary;
      (** Round-trip latency of {!Wire.request.Verify_sampled} ops. *)
  escalations : int;
      (** Sampled replies reporting a full-verify escalation; 0 on a
          valid-proof mix (exact completeness — see
          [Randomized_scheme]). *)
  batch_frames : lat_summary;
      (** Per-frame round-trip latency in batched mode (empty when
          [batch = 1]; [prove]/[verify] are empty in batched mode —
          per-op latency is not observable inside a frame). *)
  targets : target_stat list;
      (** One entry per endpoint, in the order given; a single entry
          for a plain single-target run. *)
  server : Wire.server_stats option;
      (** The first endpoint's own stats, fetched after the run —
          shows the cache hit rate the workload achieved. *)
  gc_alloc_bytes : float;
      (** Bytes the loadgen process itself allocated during the timed
          run — the client side of the cost ledger, next to the
          server's [lcp_gc_allocated_bytes_total]. *)
  gc_minor : int;  (** Client minor collections during the run. *)
  gc_major : int;  (** Client major collections during the run. *)
}

val loadgen :
  ?host:string ->
  ?targets:(string * int) list ->
  ?batch:int ->
  ?trace_sample:int ->
  ?queries:int ->
  port:int ->
  connections:int ->
  requests:int ->
  mix:int * int * int ->
  scheme:string ->
  sizes:int list ->
  unit ->
  (report, string) result
(** Replay a deterministic prove/verify/sampled-verify mix. A setup
    pass proves one cycle graph per listed size (warming the server
    cache), then [connections] threads each send [requests] requests
    round-robin over the graphs; [mix = (p, v, s)] interleaves [p]
    proves, [v] verifies, then [s] sampled verifies per [p + v + s]
    requests. A request only counts as [ok] if the semantically right
    response came back (a proof, an all-nodes-accept verdict, or an
    accepting {!Wire.response.Sampled_verified}). Sampled ops carry
    the stored valid proof, [queries] (default 4) as the per-node
    bound, the request's correlation id as the PRG seed, and an empty
    budget id; their escalation count surfaces in the report. Each
    request carries a distinct correlation id and the echo is
    verified.

    Sampled ops require [batch = 1] — the batch op table has no
    sampled kind, and mixing the two would make op-granular
    accounting ambiguous; the combination is an [Error] up front.

    [batch] (default 1) > 1 switches every worker to {!Wire.Batch}
    frames of that many ops: op [k = i * batch + j] of a connection
    follows exactly the mix/graph rotation plain request [k] would,
    each frame's graph table lists every cycle graph once, and each
    per-op reply slot is checked like a plain response — so [ok],
    [errors] and [throughput_ops] stay op-granular and comparable with
    an unbatched run of the same op volume. Requires [batch <= 65535]
    (the wire's u16 op count).

    A non-empty [targets] list overrides [host]:[port]: worker
    connections round-robin over the endpoints (the setup pass warms
    every one) and the report carries a per-target breakdown — how
    [lcp loadgen] drives several daemons, or a router plus direct
    backends, in one run.

    [trace_sample] (default 0 = off) head-samples 1 in that many
    correlation ids with {!Obs.Trace.sample}: a sampled request gets a
    root [client.request] span in the local ring and its context rides
    the wire, so router and backend spans land in the same trace. *)

val report_json : report -> string
(** The latency summary as one JSON object (the CI artifact). *)

val pp_report : Format.formatter -> report -> unit
